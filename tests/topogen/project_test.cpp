#include "ntom/topogen/project.hpp"

#include <gtest/gtest.h>

#include "ntom/graph/conditions.hpp"

namespace ntom {
namespace {

using topogen::project_to_as_level;
using topogen::router_network;

/// Two ASes, two routers each, one inter-domain link, a host on each
/// side:  h0 - r0 - r1 - [AS boundary] - r2 - r3 - h1.
router_network make_line_network() {
  router_network net;
  for (int i = 0; i < 4; ++i) {
    net.graph.add_vertex();
    net.router_as.push_back(i < 2 ? 0 : 1);
    net.is_host.push_back(false);
  }
  const auto h0 = net.graph.add_vertex();
  net.router_as.push_back(0);
  net.is_host.push_back(true);
  const auto h1 = net.graph.add_vertex();
  net.router_as.push_back(1);
  net.is_host.push_back(true);

  net.graph.add_bidirectional_edge(h0, 0);
  net.graph.add_bidirectional_edge(0, 1);
  net.graph.add_bidirectional_edge(1, 2);  // inter-domain.
  net.graph.add_bidirectional_edge(2, 3);
  net.graph.add_bidirectional_edge(3, h1);
  return net;
}

TEST(ProjectTest, LineNetworkSegments) {
  router_network net = make_line_network();
  const auto route = net.graph.shortest_path(4, 5);  // h0 -> h1.
  ASSERT_TRUE(route.has_value());
  const topology t = project_to_as_level(net, {*route});

  // Segments: intra-AS0 (h0->r0->r1), inter-domain (r1->r2),
  // intra-AS1 (r2->r3->h1)  => 3 AS-level links, 1 path.
  EXPECT_EQ(t.num_links(), 3u);
  EXPECT_EQ(t.num_paths(), 1u);
  EXPECT_EQ(t.get_path(0).length(), 3u);
  EXPECT_TRUE(paths_well_formed(t));
}

TEST(ProjectTest, InterDomainLinkOwnedByDownstreamAs) {
  router_network net = make_line_network();
  const auto route = net.graph.shortest_path(4, 5);
  const topology t = project_to_as_level(net, {*route});
  // Path link order: AS0 segment, inter-domain, AS1 segment.
  const auto& links = t.get_path(0).links();
  EXPECT_EQ(t.link(links[0]).as_number, 0u);
  EXPECT_EQ(t.link(links[1]).as_number, 1u);  // downstream AS.
  EXPECT_EQ(t.link(links[2]).as_number, 1u);
}

TEST(ProjectTest, HostAdjacentSegmentsAreEdgeLinks) {
  router_network net = make_line_network();
  const auto route = net.graph.shortest_path(4, 5);
  const topology t = project_to_as_level(net, {*route});
  const auto& links = t.get_path(0).links();
  EXPECT_TRUE(t.link(links[0]).edge);    // contains h0 attachment.
  EXPECT_FALSE(t.link(links[1]).edge);   // pure inter-domain.
  EXPECT_TRUE(t.link(links[2]).edge);    // contains h1 attachment.
}

TEST(ProjectTest, SharedSegmentsMergeIntoOneLink) {
  // Two hosts in AS0 reaching the same destination through the same
  // border pair: the shared AS1 segment must be a single AS-level link.
  router_network net = make_line_network();
  const auto h2 = net.graph.add_vertex();
  net.router_as.push_back(0);
  net.is_host.push_back(true);
  net.graph.add_bidirectional_edge(h2, 1);  // second vantage at r1.

  const auto route1 = net.graph.shortest_path(4, 5);
  const auto route2 = net.graph.shortest_path(6, 5);
  ASSERT_TRUE(route1 && route2);
  const topology t = project_to_as_level(net, {*route1, *route2});

  EXPECT_EQ(t.num_paths(), 2u);
  // The inter-domain link and the AS1 segment are shared; AS0 segments
  // differ (different entry routers). Expect 4 links total:
  // AS0 seg (h0..r1), AS0 seg (h2..r1), inter, AS1 seg.
  EXPECT_EQ(t.num_links(), 4u);

  // Shared links are traversed by both paths.
  std::size_t shared = 0;
  for (link_id e = 0; e < t.num_links(); ++e) {
    if (t.paths_through(e).count() == 2) ++shared;
  }
  EXPECT_EQ(shared, 2u);
}

TEST(ProjectTest, RouterLinksRecordedPerSegment) {
  router_network net = make_line_network();
  const auto route = net.graph.shortest_path(4, 5);
  const topology t = project_to_as_level(net, {*route});
  const auto& links = t.get_path(0).links();
  // AS0 segment rides on 2 router links (h0->r0, r0->r1).
  EXPECT_EQ(t.link(links[0]).router_links.size(), 2u);
  // Inter-domain link rides on exactly its crossing edge.
  EXPECT_EQ(t.link(links[1]).router_links.size(), 1u);
  EXPECT_EQ(t.link(links[2]).router_links.size(), 2u);
}

TEST(ProjectTest, EmptyPathsSkipped) {
  router_network net = make_line_network();
  const topology t = project_to_as_level(net, {{}});
  EXPECT_EQ(t.num_paths(), 0u);
  EXPECT_EQ(t.num_links(), 0u);
}

TEST(ProjectTest, SingleAsPathYieldsOneLink) {
  router_network net = make_line_network();
  const auto route = net.graph.shortest_path(4, 1);  // h0 -> r1, all AS0.
  ASSERT_TRUE(route.has_value());
  const topology t = project_to_as_level(net, {*route});
  EXPECT_EQ(t.num_links(), 1u);
  EXPECT_EQ(t.get_path(0).length(), 1u);
  EXPECT_EQ(t.link(0).as_number, 0u);
}

}  // namespace
}  // namespace ntom
