#include "ntom/topogen/toy.hpp"

#include <gtest/gtest.h>

namespace ntom {
namespace {

using namespace topogen;

TEST(ToyTest, PathsMatchFigure1) {
  const topology t = make_toy(toy_case::case1);
  EXPECT_EQ(t.get_path(toy_p1).links(), (std::vector<link_id>{toy_e1, toy_e2}));
  EXPECT_EQ(t.get_path(toy_p2).links(), (std::vector<link_id>{toy_e1, toy_e3}));
  EXPECT_EQ(t.get_path(toy_p3).links(), (std::vector<link_id>{toy_e3, toy_e4}));
}

TEST(ToyTest, Case1CorrelationSets) {
  const topology t = make_toy(toy_case::case1);
  EXPECT_EQ(t.link(toy_e1).as_number, 0u);
  EXPECT_EQ(t.link(toy_e2).as_number, 1u);
  EXPECT_EQ(t.link(toy_e3).as_number, 1u);
  EXPECT_EQ(t.link(toy_e4).as_number, 2u);
}

TEST(ToyTest, Case2CorrelationSets) {
  const topology t = make_toy(toy_case::case2);
  EXPECT_EQ(t.link(toy_e1).as_number, t.link(toy_e4).as_number);
  EXPECT_EQ(t.link(toy_e2).as_number, t.link(toy_e3).as_number);
  EXPECT_NE(t.link(toy_e1).as_number, t.link(toy_e2).as_number);
}

TEST(ToyTest, SharedRouterLinksEncodeCorrelation) {
  const topology c1 = make_toy(toy_case::case1);
  EXPECT_TRUE(c1.links_share_router_link(toy_e2, toy_e3));
  EXPECT_FALSE(c1.links_share_router_link(toy_e1, toy_e4));

  const topology c2 = make_toy(toy_case::case2);
  EXPECT_TRUE(c2.links_share_router_link(toy_e2, toy_e3));
  EXPECT_TRUE(c2.links_share_router_link(toy_e1, toy_e4));
}

TEST(ToyTest, PathsAreIdenticalAcrossCases) {
  const topology c1 = make_toy(toy_case::case1);
  const topology c2 = make_toy(toy_case::case2);
  ASSERT_EQ(c1.num_paths(), c2.num_paths());
  for (path_id p = 0; p < c1.num_paths(); ++p) {
    EXPECT_EQ(c1.get_path(p).links(), c2.get_path(p).links());
  }
}

TEST(ToyTest, EveryLinkMarkedEdge) {
  // All toy links touch an end-host in Fig. 1.
  const topology t = make_toy(toy_case::case1);
  for (link_id e = 0; e < t.num_links(); ++e) {
    EXPECT_TRUE(t.link(e).edge);
  }
}

}  // namespace
}  // namespace ntom
