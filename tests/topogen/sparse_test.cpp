#include "ntom/topogen/sparse.hpp"

#include <gtest/gtest.h>

#include "ntom/graph/conditions.hpp"
#include "ntom/topogen/brite.hpp"

namespace ntom {
namespace {

TEST(SparseTest, DeterministicInSeed) {
  topogen::sparse_params p;
  p.seed = 7;
  const topology a = topogen::generate_sparse(p);
  const topology b = topogen::generate_sparse(p);
  EXPECT_EQ(a.num_links(), b.num_links());
  EXPECT_EQ(a.num_paths(), b.num_paths());
  for (path_id i = 0; i < a.num_paths(); ++i) {
    EXPECT_EQ(a.get_path(i).links(), b.get_path(i).links());
  }
}

TEST(SparseTest, DiscardFractionReducesPaths) {
  topogen::sparse_params p;
  p.seed = 3;
  p.keep_fraction = 0.5;
  const topology t = topogen::generate_sparse(p);
  // Expect roughly keep_fraction of attempted traceroutes to survive.
  EXPECT_LT(t.num_paths(), p.num_paths);
  EXPECT_GT(t.num_paths(), p.num_paths / 4);
  EXPECT_TRUE(paths_well_formed(t));
}

TEST(SparseTest, KeepAllWhenFractionIsOne) {
  topogen::sparse_params p;
  p.seed = 3;
  p.keep_fraction = 1.0;
  const topology t = topogen::generate_sparse(p);
  EXPECT_EQ(t.num_paths(), p.num_paths);
}

TEST(SparseTest, LowPathCrissCrossing) {
  topogen::sparse_params sp;
  sp.seed = 5;
  topogen::brite_params bp;
  bp.seed = 5;
  const auto sparse_report = measure_sparsity(topogen::generate_sparse(sp));
  const auto brite_report = measure_sparsity(topogen::generate_brite(bp));
  // The defining property (§3.2): few paths cross each link, so each
  // unknown appears in few equations and the system rank is low.
  EXPECT_LT(sparse_report.mean_paths_per_link,
            0.7 * brite_report.mean_paths_per_link);
  // Not degenerate either: the trunk links near the source are shared.
  EXPECT_GT(sparse_report.path_overlap_fraction, 0.05);
}

TEST(SparseTest, HierarchicalStructureHasManyAses) {
  topogen::sparse_params p;
  p.seed = 5;
  const topology t = topogen::generate_sparse(p);
  // source + peers + mid + stubs (only ASes touched by kept paths get
  // links, but the AS id space covers the hierarchy).
  EXPECT_GT(t.num_ases(), p.num_peers + 2);
}

TEST(SparseTest, SharedRouterLinksExist) {
  topogen::sparse_params p;
  p.seed = 5;
  const topology t = topogen::generate_sparse(p);
  bool found_shared = false;
  for (router_link_id r = 0; r < t.num_router_links() && !found_shared; ++r) {
    found_shared = t.links_on_router_link(r).size() >= 2;
  }
  EXPECT_TRUE(found_shared);
}

TEST(SparseTest, PaperScaleIsLarger) {
  const auto small = topogen::sparse_params{};
  const auto paper = topogen::sparse_params::paper_scale();
  EXPECT_GT(paper.num_stubs, small.num_stubs);
  EXPECT_GT(paper.num_paths, small.num_paths);
}

}  // namespace
}  // namespace ntom
