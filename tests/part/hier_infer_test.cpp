#include "ntom/part/hier_infer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>

#include "ntom/exp/runner.hpp"
#include "ntom/sim/packet_sim.hpp"

namespace ntom {
namespace {

/// Two 2-link islands (see partition_test.cpp): a plan with no cut
/// links, so every merge is single-contributor.
topology two_islands() {
  topology t(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    t.add_link({.as_number = i, .router_links = {i}, .edge = false});
  }
  t.add_path({0, 1});
  t.add_path({2, 3});
  t.finalize();
  return t;
}

/// Dumbbell with articulation link e2 (see partition_test.cpp); under
/// bicomp with max_cell_links=3 the cut set is exactly {e2}.
topology dumbbell() {
  topology t(5);
  for (std::uint32_t i = 0; i < 5; ++i) {
    t.add_link({.as_number = i, .router_links = {i}, .edge = false});
  }
  t.add_path({0, 1});
  t.add_path({1, 2});
  t.add_path({2, 0});
  t.add_path({2, 3});
  t.add_path({3, 4});
  t.add_path({4, 2});
  t.finalize();
  return t;
}

link_estimates cell_estimates(const partition_cell& cell,
                              std::initializer_list<double> values) {
  link_estimates le;
  le.congestion.assign(values);
  le.estimated = bitvec(cell.links.size());
  le.estimated.flip();
  return le;
}

/// Per-router-link stationary congestion model (the toy_model idiom).
congestion_model island_model(const topology& t,
                              std::vector<std::pair<std::size_t, double>> qs) {
  congestion_model m;
  m.phase_q.assign(1, std::vector<double>(t.num_router_links(), 0.0));
  m.congestable_links = bitvec(t.num_links());
  for (const auto& [r, q] : qs) {
    m.phase_q[0][r] = q;
    for (const link_id e : t.links_on_router_link(r)) {
      m.congestable_links.set(e);
    }
  }
  return m;
}

TEST(MergeCellEstimatesTest, SingleContributorIsExact) {
  const topology t = two_islands();
  const partition_plan plan =
      make_partition(t, {.mode = partition_mode::components});
  ASSERT_EQ(plan.cells.size(), 2u);

  std::vector<link_estimates> per_cell;
  per_cell.push_back(cell_estimates(plan.cells[0], {0.25, 0.5}));
  per_cell.push_back(cell_estimates(plan.cells[1], {0.75, 0.125}));

  const link_estimates merged = merge_cell_estimates(plan, per_cell);
  ASSERT_EQ(merged.congestion.size(), 4u);
  EXPECT_EQ(merged.estimated.count(), 4u);
  // Values land at the cells' global link ids, bit-identically.
  EXPECT_EQ(merged.congestion[plan.cells[0].links[0]], 0.25);
  EXPECT_EQ(merged.congestion[plan.cells[0].links[1]], 0.5);
  EXPECT_EQ(merged.congestion[plan.cells[1].links[0]], 0.75);
  EXPECT_EQ(merged.congestion[plan.cells[1].links[1]], 0.125);
}

TEST(MergeCellEstimatesTest, ThrowsOnCellCountMismatch) {
  const topology t = two_islands();
  const partition_plan plan =
      make_partition(t, {.mode = partition_mode::components});
  std::vector<link_estimates> per_cell(1);
  EXPECT_THROW((void)merge_cell_estimates(plan, per_cell), std::logic_error);
}

TEST(MergeCellEstimatesTest, CutLinkTakesWeightedAverage) {
  const topology t = dumbbell();
  const partition_plan plan = make_partition(
      t, {.mode = partition_mode::bicomp, .max_cell_links = 3});
  ASSERT_EQ(plan.cut_links, (std::vector<link_id>{2}));

  // Both cells see link 2 through two of their three paths, so the
  // weights tie and the merge is the plain average.
  std::vector<link_estimates> per_cell(plan.cells.size());
  for (std::size_t c = 0; c < plan.cells.size(); ++c) {
    const partition_cell& cell = plan.cells[c];
    link_estimates le;
    le.congestion.assign(cell.links.size(), 0.0);
    le.estimated = bitvec(cell.links.size());
    le.estimated.flip();
    for (std::size_t i = 0; i < cell.links.size(); ++i) {
      le.congestion[i] = cell.links[i] == 2 ? (c == 0 ? 0.2 : 0.6)
                                            : 0.1 * (cell.links[i] + 1);
    }
    per_cell[c] = std::move(le);
  }

  const link_estimates merged = merge_cell_estimates(plan, per_cell);
  EXPECT_DOUBLE_EQ(merged.congestion[2], 0.4);
  EXPECT_TRUE(merged.estimated.test(2));
  // Non-cut links keep their owning cell's value exactly.
  EXPECT_EQ(merged.congestion[0], 0.1);
  EXPECT_EQ(merged.congestion[4], 0.5);
}

TEST(MergeCellEstimatesTest, CutLinkEstimatedIsOrAcrossCells) {
  const topology t = dumbbell();
  const partition_plan plan = make_partition(
      t, {.mode = partition_mode::bicomp, .max_cell_links = 3});

  std::vector<link_estimates> per_cell(plan.cells.size());
  for (std::size_t c = 0; c < plan.cells.size(); ++c) {
    const partition_cell& cell = plan.cells[c];
    link_estimates le;
    le.congestion.assign(cell.links.size(), 0.5);
    le.estimated = bitvec(cell.links.size());
    le.estimated.flip();
    // Cell 1 could not determine the cut link: clear its flag and plant
    // a decoy value that must not leak into the merge.
    if (c == 1) {
      for (std::size_t i = 0; i < cell.links.size(); ++i) {
        if (cell.links[i] == 2) {
          le.estimated.reset(i);
          le.congestion[i] = 0.9;
        }
      }
    }
    per_cell[c] = std::move(le);
  }

  const link_estimates merged = merge_cell_estimates(plan, per_cell);
  // One contributor remains: its value survives bit-identically.
  EXPECT_TRUE(merged.estimated.test(2));
  EXPECT_EQ(merged.congestion[2], 0.5);

  // Neither cell determined it: the link stays undetermined.
  for (std::size_t c = 0; c < plan.cells.size(); ++c) {
    const partition_cell& cell = plan.cells[c];
    for (std::size_t i = 0; i < cell.links.size(); ++i) {
      if (cell.links[i] == 2) per_cell[c].estimated.reset(i);
    }
  }
  const link_estimates none = merge_cell_estimates(plan, per_cell);
  EXPECT_FALSE(none.estimated.test(2));
  EXPECT_EQ(none.congestion[2], 0.0);
}

TEST(PartitionedEstimatorTest, MatchesMonolithicOnCleanSplit) {
  // With no cut links and no straddling paths, each cell sees exactly
  // its island's evidence — the partitioned fit must reproduce the
  // monolithic estimates.
  const topology t = two_islands();
  auto plan = std::make_shared<const partition_plan>(
      make_partition(t, {.mode = partition_mode::components}));

  const congestion_model model = island_model(t, {{0, 0.3}, {2, 0.4}});
  sim_params sim;
  sim.intervals = 400;
  sim.oracle_monitor = true;
  const experiment_data data = run_experiment(t, model, sim);

  const estimator_spec spec = "independence";
  const auto mono = make_estimator(spec);
  mono->fit(t, data);
  const auto part = make_partitioned_estimator(spec, plan);
  part->fit(t, data);

  const link_estimates a = mono->links();
  const link_estimates b = part->links();
  ASSERT_EQ(a.congestion.size(), b.congestion.size());
  for (link_id e = 0; e < t.num_links(); ++e) {
    EXPECT_EQ(a.estimated.test(e), b.estimated.test(e)) << "link " << e;
    EXPECT_NEAR(a.congestion[e], b.congestion[e], 1e-12) << "link " << e;
  }
}

TEST(PartitionedEstimatorTest, StreamedFitMatchesMaterialized) {
  const topology t = two_islands();
  auto plan = std::make_shared<const partition_plan>(
      make_partition(t, {.mode = partition_mode::components}));
  const congestion_model model = island_model(t, {{1, 0.25}, {3, 0.35}});
  sim_params sim;
  sim.intervals = 300;
  sim.oracle_monitor = true;

  const estimator_spec spec = "independence";
  const auto materialized = make_partitioned_estimator(spec, plan);
  materialized->fit(t, run_experiment(t, model, sim));

  const auto streamed = make_partitioned_estimator(spec, plan);
  ASSERT_TRUE(streamed->caps().streaming);
  estimator_fit_sink sink(*streamed);
  run_experiment_streaming(t, model, sim, sink, 64);

  const link_estimates a = materialized->links();
  const link_estimates b = streamed->links();
  for (link_id e = 0; e < t.num_links(); ++e) {
    EXPECT_EQ(a.estimated.test(e), b.estimated.test(e)) << "link " << e;
    EXPECT_DOUBLE_EQ(a.congestion[e], b.congestion[e]) << "link " << e;
  }
}

TEST(PartitionedEstimatorTest, BooleanInferenceLiftsCellAnswers) {
  const topology t = two_islands();
  auto plan = std::make_shared<const partition_plan>(
      make_partition(t, {.mode = partition_mode::components}));
  const congestion_model model = island_model(t, {{0, 0.3}, {2, 0.4}});
  sim_params sim;
  sim.intervals = 400;
  sim.oracle_monitor = true;
  const experiment_data data = run_experiment(t, model, sim);

  const estimator_spec spec = "sparsity";
  const auto mono = make_estimator(spec);
  mono->fit(t, data);
  const auto part = make_partitioned_estimator(spec, plan);
  part->fit(t, data);

  for (std::size_t i = 0; i < data.intervals; ++i) {
    const bitvec congested = data.congested_paths_at(i);
    const bitvec a = mono->infer(congested);
    const bitvec b = part->infer(congested);
    ASSERT_EQ(a.size(), b.size());
    for (link_id e = 0; e < t.num_links(); ++e) {
      EXPECT_EQ(a.test(e), b.test(e)) << "interval " << i << " link " << e;
    }
  }
}

TEST(PartitionedEstimatorTest, RejectsForeignTopology) {
  const topology t = two_islands();
  auto plan = std::make_shared<const partition_plan>(
      make_partition(t, {.mode = partition_mode::components}));
  const auto part = make_partitioned_estimator("independence", plan);

  const topology other = dumbbell();
  const congestion_model model = island_model(other, {{0, 0.3}});
  sim_params sim;
  sim.intervals = 10;
  sim.oracle_monitor = true;
  const experiment_data data = run_experiment(other, model, sim);
  EXPECT_THROW(part->fit(other, data), std::logic_error);
}

TEST(PartitionCellsTest, EvaluatorMergedMatchesAdapter) {
  // Drive the cell_evaluator the way the grid does — make_run_state,
  // then eval_cell per shard — and compare the merged estimate against
  // the in-process adapter on the same materialized run.
  const topology t = two_islands();
  auto plan = std::make_shared<const partition_plan>(
      make_partition(t, {.mode = partition_mode::components}));

  run_config config;
  config.sim.intervals = 300;
  config.sim.oracle_monitor = true;

  run_artifacts run;
  run.topo_ptr = std::make_shared<const topology>(two_islands());
  run.model = island_model(run.topo(), {{0, 0.3}, {2, 0.4}});
  run.data = run_experiment(run.topo(), run.model, config.sim);

  const estimator_spec spec = "independence";
  partition_cells cells(plan, spec);
  EXPECT_THROW((void)cells.merged(), std::logic_error);
  EXPECT_EQ(cells.shards(config), plan->cells.size());

  auto state = cells.make_run_state(config, run);
  for (std::size_t shard = 0; shard < cells.shards(config); ++shard) {
    const auto rows = cells.eval_cell(config, run, state.get(), shard);
    EXPECT_TRUE(rows.empty());
  }
  const link_estimates grid = cells.merged();

  const auto adapter = make_partitioned_estimator(spec, plan);
  adapter->fit(run.topo(), run.data);
  const link_estimates direct = adapter->links();
  for (link_id e = 0; e < t.num_links(); ++e) {
    EXPECT_EQ(grid.estimated.test(e), direct.estimated.test(e));
    EXPECT_DOUBLE_EQ(grid.congestion[e], direct.congestion[e]);
  }
}

TEST(PartitionCellsTest, RejectsUnknownEstimatorUpFront) {
  const topology t = two_islands();
  auto plan = std::make_shared<const partition_plan>(
      make_partition(t, {.mode = partition_mode::components}));
  EXPECT_THROW((partition_cells(plan, "no-such-estimator")), spec_error);
}

}  // namespace
}  // namespace ntom
