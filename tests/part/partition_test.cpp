#include "ntom/part/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ntom/topogen/toy.hpp"
#include "ntom/util/spec.hpp"

namespace ntom {
namespace {

/// Two 2-link islands with no shared paths, router links, or ASes:
/// the link/path structure splits exactly in two.
topology two_islands() {
  topology t(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    t.add_link({.as_number = i, .router_links = {i}, .edge = false});
  }
  t.add_path({0, 1});
  t.add_path({2, 3});
  t.finalize();
  return t;
}

/// Two path-triangles {e0,e1,e2} and {e2,e3,e4} sharing the
/// articulation link e2, plus one straddling path {e1,e2,e3}. Every
/// link is its own atom (distinct AS, distinct router link), so the
/// atom graph is the classic dumbbell the bicomp cut targets.
topology dumbbell() {
  topology t(5);
  for (std::uint32_t i = 0; i < 5; ++i) {
    t.add_link({.as_number = i, .router_links = {i}, .edge = false});
  }
  t.add_path({0, 1});
  t.add_path({1, 2});
  t.add_path({2, 0});
  t.add_path({2, 3});
  t.add_path({3, 4});
  t.add_path({4, 2});
  t.add_path({1, 2, 3});
  t.finalize();
  return t;
}

const partition_cell* cell_with_link(const partition_plan& plan, link_id e) {
  for (const partition_cell& c : plan.cells) {
    if (c.link_mask.test(e)) return &c;
  }
  return nullptr;
}

TEST(PartitionModeTest, ParsesAllSpellings) {
  EXPECT_EQ(partition_mode_from_string("none"), partition_mode::none);
  EXPECT_EQ(partition_mode_from_string(""), partition_mode::none);
  EXPECT_EQ(partition_mode_from_string("components"),
            partition_mode::components);
  EXPECT_EQ(partition_mode_from_string("bicomp"), partition_mode::bicomp);
  EXPECT_EQ(partition_mode_from_string("biconnected"), partition_mode::bicomp);
  EXPECT_EQ(partition_mode_from_string("auto"), partition_mode::automatic);
  EXPECT_EQ(partition_mode_from_string("automatic"),
            partition_mode::automatic);
  EXPECT_THROW((void)partition_mode_from_string("blocks"), spec_error);
}

TEST(PartitionModeTest, ToStringRoundTrips) {
  for (const partition_mode m :
       {partition_mode::components, partition_mode::bicomp,
        partition_mode::automatic}) {
    EXPECT_EQ(partition_mode_from_string(to_string(m)), m);
  }
  EXPECT_STREQ(to_string(partition_mode::none), "none");
}

TEST(PartitionTest, RejectsNoneModeAndZeroLimit) {
  const topology t = two_islands();
  EXPECT_THROW((void)make_partition(t, {.mode = partition_mode::none}),
               spec_error);
  EXPECT_THROW((void)make_partition(t, {.mode = partition_mode::components,
                                        .max_cell_links = 0}),
               spec_error);
}

TEST(PartitionTest, ComponentsSplitIslandsExactly) {
  const topology t = two_islands();
  const partition_plan plan =
      make_partition(t, {.mode = partition_mode::components});

  ASSERT_EQ(plan.cells.size(), 2u);
  EXPECT_FALSE(plan.trivial());
  EXPECT_TRUE(plan.cut_links.empty());
  EXPECT_EQ(plan.cut_mask.count(), 0u);
  EXPECT_EQ(plan.straddling_paths, 0u);
  EXPECT_EQ(plan.num_links, 4u);
  EXPECT_EQ(plan.num_paths, 2u);

  const partition_cell* a = cell_with_link(plan, 0);
  const partition_cell* b = cell_with_link(plan, 2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(a->links, (std::vector<link_id>{0, 1}));
  EXPECT_EQ(b->links, (std::vector<link_id>{2, 3}));
  EXPECT_EQ(a->paths, (std::vector<path_id>{0}));
  EXPECT_EQ(b->paths, (std::vector<path_id>{1}));

  // Masks mirror the id lists.
  EXPECT_TRUE(a->link_mask.test(0));
  EXPECT_TRUE(a->link_mask.test(1));
  EXPECT_FALSE(a->link_mask.test(2));
  EXPECT_TRUE(a->path_mask.test(0));
  EXPECT_FALSE(a->path_mask.test(1));

  // Each link belongs to exactly one cell; each path is assigned.
  for (link_id e = 0; e < 4; ++e) {
    EXPECT_EQ(plan.link_cells[e].size(), 1u);
  }
  EXPECT_NE(plan.path_cell[0], partition_plan::npos);
  EXPECT_NE(plan.path_cell[1], partition_plan::npos);
  EXPECT_NE(plan.path_cell[0], plan.path_cell[1]);
}

TEST(PartitionTest, SubTopologiesAreDenseAndFinalized) {
  const topology t = two_islands();
  const partition_plan plan =
      make_partition(t, {.mode = partition_mode::components});
  for (const partition_cell& cell : plan.cells) {
    ASSERT_NE(cell.topo, nullptr);
    EXPECT_TRUE(cell.topo->finalized());
    EXPECT_EQ(cell.topo->num_links(), cell.links.size());
    EXPECT_EQ(cell.topo->num_paths(), cell.paths.size());
    // Local path j's links map through cell.links back to the global
    // path's links.
    for (std::size_t j = 0; j < cell.paths.size(); ++j) {
      const auto& global = t.get_path(cell.paths[j]).links();
      const auto& local = cell.topo->get_path(static_cast<path_id>(j)).links();
      ASSERT_EQ(local.size(), global.size());
      for (std::size_t k = 0; k < local.size(); ++k) {
        EXPECT_EQ(cell.links[local[k]], global[k]);
      }
    }
  }
}

TEST(PartitionTest, ConnectedGraphIsTrivialUnderComponents) {
  const topology t = topogen::make_toy(topogen::toy_case::case1);
  const partition_plan plan =
      make_partition(t, {.mode = partition_mode::components});
  EXPECT_TRUE(plan.trivial());
  ASSERT_EQ(plan.cells.size(), 1u);
  EXPECT_EQ(plan.cells[0].links.size(), t.covered_links().count());
}

TEST(PartitionTest, SameAsLinksFuseIntoOneAtom) {
  // Two links of one AS with disjoint paths: the correlation set must
  // not be split, so they land in one cell despite no path adjacency.
  topology t(2);
  t.add_link({.as_number = 0, .router_links = {0}, .edge = false});
  t.add_link({.as_number = 0, .router_links = {1}, .edge = false});
  t.add_path({0});
  t.add_path({1});
  t.finalize();
  const partition_plan plan =
      make_partition(t, {.mode = partition_mode::components});
  EXPECT_TRUE(plan.trivial());
  EXPECT_EQ(plan.cells[0].links, (std::vector<link_id>{0, 1}));
}

TEST(PartitionTest, SharedRouterLinkFusesIntoOneAtom) {
  // Distinct ASes riding one router link share a congestion driver:
  // indivisible for the same reason.
  topology t(1);
  t.add_link({.as_number = 0, .router_links = {0}, .edge = false});
  t.add_link({.as_number = 1, .router_links = {0}, .edge = false});
  t.add_path({0});
  t.add_path({1});
  t.finalize();
  const partition_plan plan =
      make_partition(t, {.mode = partition_mode::components});
  EXPECT_TRUE(plan.trivial());
}

TEST(PartitionTest, BicompCutsDumbbellAtArticulationLink) {
  const topology t = dumbbell();
  const partition_plan plan = make_partition(
      t, {.mode = partition_mode::bicomp, .max_cell_links = 3});

  ASSERT_EQ(plan.cells.size(), 2u);
  EXPECT_EQ(plan.cut_links, (std::vector<link_id>{2}));
  EXPECT_TRUE(plan.cut_mask.test(2));
  EXPECT_EQ(plan.cut_mask.count(), 1u);
  EXPECT_EQ(plan.link_cells[2].size(), 2u);

  const partition_cell* left = cell_with_link(plan, 0);
  const partition_cell* right = cell_with_link(plan, 4);
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  EXPECT_EQ(left->links, (std::vector<link_id>{0, 1, 2}));
  EXPECT_EQ(right->links, (std::vector<link_id>{2, 3, 4}));

  // The triangles' paths are fully contained; the {e1,e2,e3} path
  // spans both cells and is excluded from each.
  EXPECT_EQ(left->paths, (std::vector<path_id>{0, 1, 2}));
  EXPECT_EQ(right->paths, (std::vector<path_id>{3, 4, 5}));
  EXPECT_EQ(plan.straddling_paths, 1u);
  EXPECT_EQ(plan.path_cell[6], partition_plan::npos);

  const std::string text = plan.describe();
  EXPECT_NE(text.find("cells=2"), std::string::npos);
  EXPECT_NE(text.find("cut_links=1"), std::string::npos);
}

TEST(PartitionTest, BicompGreedyMergeRespectsGenerousLimit) {
  // With room for both blocks, the greedy merge reunifies them through
  // the shared articulation atom — back to one (trivial) cell, and no
  // path evidence is sacrificed.
  const topology t = dumbbell();
  const partition_plan plan = make_partition(
      t, {.mode = partition_mode::bicomp, .max_cell_links = 16});
  EXPECT_TRUE(plan.trivial());
  EXPECT_EQ(plan.straddling_paths, 0u);
  EXPECT_TRUE(plan.cut_links.empty());
}

TEST(PartitionTest, AutoUsesComponentsWhenTheyFit) {
  // Components already bound the cell size: auto must not pay the
  // bicomp refinement's straddling-path cost.
  const topology t = dumbbell();
  const partition_plan plan = make_partition(
      t, {.mode = partition_mode::automatic, .max_cell_links = 16});
  EXPECT_TRUE(plan.trivial());
  EXPECT_EQ(plan.straddling_paths, 0u);
}

TEST(PartitionTest, AutoRefinesOversizedComponents) {
  // The dumbbell is one connected component of 5 links; with a 3-link
  // budget auto falls through to the bicomp cut.
  const topology t = dumbbell();
  const partition_plan plan = make_partition(
      t, {.mode = partition_mode::automatic, .max_cell_links = 3});
  const partition_plan bicomp = make_partition(
      t, {.mode = partition_mode::bicomp, .max_cell_links = 3});
  ASSERT_EQ(plan.cells.size(), bicomp.cells.size());
  for (std::size_t c = 0; c < plan.cells.size(); ++c) {
    EXPECT_EQ(plan.cells[c].links, bicomp.cells[c].links);
    EXPECT_EQ(plan.cells[c].paths, bicomp.cells[c].paths);
  }
  EXPECT_EQ(plan.cut_links, bicomp.cut_links);
}

TEST(PartitionTest, UncoveredLinkBelongsToNoCell) {
  topology t(3);
  t.add_link({.as_number = 0, .router_links = {0}, .edge = false});
  t.add_link({.as_number = 1, .router_links = {1}, .edge = false});
  t.add_link({.as_number = 2, .router_links = {2}, .edge = false});
  t.add_path({0, 1});  // link 2 is never monitored.
  t.finalize();
  const partition_plan plan =
      make_partition(t, {.mode = partition_mode::components});
  EXPECT_TRUE(plan.link_cells[2].empty());
  for (const partition_cell& cell : plan.cells) {
    EXPECT_FALSE(cell.link_mask.test(2));
  }
}

TEST(PartitionTest, DeterministicAcrossCalls) {
  const topology t = dumbbell();
  const partition_options opts{.mode = partition_mode::bicomp,
                               .max_cell_links = 3};
  const partition_plan a = make_partition(t, opts);
  const partition_plan b = make_partition(t, opts);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    EXPECT_EQ(a.cells[c].links, b.cells[c].links);
    EXPECT_EQ(a.cells[c].paths, b.cells[c].paths);
  }
  EXPECT_EQ(a.cut_links, b.cut_links);
  EXPECT_EQ(a.path_cell, b.path_cell);
}

}  // namespace
}  // namespace ntom
