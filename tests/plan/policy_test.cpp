// Unit tests of the probe-policy registry, the shared budget math, the
// three built-in selection rules, and probe_policy_sink's masking
// contract (congested rows ANDed with the selection, truth plane
// untouched, observed_paths stamped, full budgets passed through).
#include "ntom/plan/policy.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ntom/plan/info_gain.hpp"

namespace ntom {
namespace {

/// `paths` single-link paths over `paths` private links — the simplest
/// topology with an adjustable path count for budget math.
topology make_topo(std::size_t paths) {
  topology t(paths);
  for (std::size_t e = 0; e < paths; ++e) {
    t.add_link({.as_number = 1,
                .router_links = {static_cast<router_link_id>(e)},
                .edge = false});
  }
  for (std::size_t p = 0; p < paths; ++p) {
    t.add_path({static_cast<link_id>(p)});
  }
  t.finalize();
  return t;
}

measurement_chunk make_chunk(std::size_t first, std::size_t count,
                             std::size_t paths, std::size_t links) {
  measurement_chunk chunk;
  chunk.first_interval = first;
  chunk.count = count;
  chunk.congested_paths = bit_matrix(count, paths);
  chunk.true_links = bit_matrix(count, links);
  return chunk;
}

/// Stores every chunk it receives (copies — the sink reuses its buffer).
class chunk_collector final : public measurement_sink {
 public:
  void consume(const measurement_chunk& chunk) override {
    chunks.push_back(chunk);
  }
  std::vector<measurement_chunk> chunks;
};

TEST(PolicyRegistryTest, HasBuiltinsAndAliases) {
  const auto names = probe_policy_registry().names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_TRUE(probe_policy_registry().contains("uniform"));
  EXPECT_TRUE(probe_policy_registry().contains("round_robin"));
  EXPECT_TRUE(probe_policy_registry().contains("info_gain"));
  // Aliases resolve to the same plugins.
  EXPECT_NE(make_probe_policy(probe_policy_spec("rr,frac=0.5")), nullptr);
  EXPECT_NE(make_probe_policy(probe_policy_spec("bandit")), nullptr);
  EXPECT_NE(probe_policy_registry().describe().find("info_gain"),
            std::string::npos);
}

TEST(PolicyRegistryTest, RejectsBadSpecs) {
  EXPECT_THROW((void)make_probe_policy(probe_policy_spec("no_such_policy")),
               spec_error);
  EXPECT_THROW(
      (void)make_probe_policy(probe_policy_spec("uniform,fraction=0.5")),
      spec_error);
  for (const char* bad :
       {"uniform,frac=0", "uniform,frac=1.5", "uniform,frac=-0.3",
        "round_robin,frac=0", "info_gain,frac=2", "info_gain,explore=-1"}) {
    EXPECT_THROW((void)make_probe_policy(probe_policy_spec(bad)), spec_error)
        << bad;
  }
}

TEST(PolicyBudgetTest, BudgetMath) {
  EXPECT_EQ(probe_budget_paths(0.05, 60), 3u);
  EXPECT_EQ(probe_budget_paths(0.5, 60), 30u);
  EXPECT_EQ(probe_budget_paths(1.0, 60), 60u);
  // max(1, ...): a tiny budget still probes one path.
  EXPECT_EQ(probe_budget_paths(0.001, 60), 1u);
  EXPECT_EQ(probe_budget_paths(1.0, 0), 0u);
}

TEST(UniformPolicyTest, SelectsBudgetDeterministically) {
  const topology t = make_topo(20);
  const auto make = [] {
    return make_probe_policy(probe_policy_spec("uniform,frac=0.3,seed=5"));
  };
  const std::unique_ptr<probe_policy> a = make();
  const std::unique_ptr<probe_policy> b = make();
  a->begin(t, 64);
  b->begin(t, 64);
  const bitvec first = a->select(0, 16);
  EXPECT_EQ(first.size(), 20u);
  EXPECT_EQ(first.count(), probe_budget_paths(0.3, 20));
  // Same spec, fresh instance: identical draw (the fit pass and every
  // scoring replay must see the same masks).
  EXPECT_EQ(first, b->select(0, 16));
  // The draw is keyed on the chunk position, so some later chunk must
  // differ from the first (20-choose-6 makes a full collision run
  // astronomically unlikely).
  bool any_differs = false;
  for (std::size_t c = 1; c < 8 && !any_differs; ++c) {
    any_differs = !(a->select(c * 16, 16) == first);
  }
  EXPECT_TRUE(any_differs);

  const std::unique_ptr<probe_policy> full =
      make_probe_policy(probe_policy_spec("uniform,frac=1.0"));
  full->begin(t, 64);
  EXPECT_EQ(full->select(0, 16).count(), 20u);
}

TEST(RoundRobinPolicyTest, RotatesCoverage) {
  const topology t = make_topo(10);
  const std::unique_ptr<probe_policy> policy =
      make_probe_policy(probe_policy_spec("round_robin,frac=0.25"));
  policy->begin(t, 0);
  const std::size_t budget = probe_budget_paths(0.25, 10);
  bitvec covered(10);
  std::size_t chunks_to_cover = 0;
  for (std::size_t c = 0; c < 8; ++c) {
    const bitvec sel = policy->select(c * 4, 4);
    EXPECT_EQ(sel.count(), budget) << "chunk " << c;
    covered |= sel;
    if (chunks_to_cover == 0 && covered.count() == 10) {
      chunks_to_cover = c + 1;
    }
  }
  // ceil(10 / 3) = 4 consecutive chunks cover every path.
  EXPECT_EQ(chunks_to_cover, 4u);
}

TEST(InfoGainPolicyTest, BonusDrivesCoverageThenMeanConcentrates) {
  const topology t = make_topo(6);
  info_gain_params params;
  params.frac = 0.5;
  params.horizon = 0;  // no forgetting; exact counter checks below.
  info_gain_policy policy(params);
  policy.begin(t, 0);

  // Round 0: all-zero belief, ties break toward the lower path id.
  const bitvec first = policy.select(0, 4);
  EXPECT_EQ(first.count(), 3u);
  for (std::size_t p = 0; p < 3; ++p) EXPECT_TRUE(first.test(p)) << p;

  // Observe a masked chunk: path 0 congested all 4 intervals, paths 1-2
  // observed good.
  measurement_chunk chunk = make_chunk(0, 4, 6, 6);
  for (std::size_t i = 0; i < 4; ++i) chunk.congested_paths.set(i, 0);
  chunk.observed_paths = first;
  chunk.invalidate_derived();
  policy.observe(chunk);

  EXPECT_EQ(policy.observed_intervals()[0], 4.0);
  EXPECT_EQ(policy.congested_intervals()[0], 4.0);
  EXPECT_EQ(policy.observed_intervals()[1], 4.0);
  EXPECT_EQ(policy.congested_intervals()[1], 0.0);
  // Unobserved paths accumulated nothing.
  EXPECT_EQ(policy.observed_intervals()[3], 0.0);

  // The congested path scores above its observed-good peers, and the
  // never-observed paths outrank the observed-good ones (UCB bonus).
  EXPECT_GT(policy.acquisition(0), policy.acquisition(1));
  EXPECT_GT(policy.acquisition(3), policy.acquisition(1));
  const bitvec second = policy.select(4, 4);
  EXPECT_TRUE(second.test(0));  // the hot path stays in the budget.
}

TEST(InfoGainPolicyTest, HorizonHalvesTheBelief) {
  const topology t = make_topo(4);
  info_gain_params params;
  params.frac = 1.0;
  params.horizon = 2;
  info_gain_policy policy(params);
  policy.begin(t, 0);

  measurement_chunk chunk = make_chunk(0, 2, 4, 4);
  chunk.congested_paths.set(0, 1);
  chunk.invalidate_derived();
  policy.observe(chunk);  // round 1: no decay yet.
  EXPECT_EQ(policy.observed_intervals()[0], 2.0);
  EXPECT_EQ(policy.congested_intervals()[1], 1.0);
  policy.observe(chunk);  // round 2: counters halve after the update.
  EXPECT_EQ(policy.observed_intervals()[0], 2.0);  // (2 + 2) / 2.
  EXPECT_EQ(policy.congested_intervals()[1], 1.0);  // (1 + 1) / 2.
}

TEST(PolicySinkTest, MasksCongestionButNeverTruth) {
  const topology t = make_topo(6);

  /// Fixed selection {1, 3} regardless of the chunk.
  class fixed_policy final : public probe_policy {
   public:
    void begin(const topology& topo, std::size_t) override {
      paths_ = topo.num_paths();
    }
    bitvec select(std::size_t, std::size_t) override {
      bitvec sel(paths_);
      sel.set(1);
      sel.set(3);
      return sel;
    }
    std::size_t paths_ = 0;
  };

  fixed_policy policy;
  chunk_collector collected;
  probe_policy_sink sink(policy, collected);
  sink.begin(t, 8);

  measurement_chunk chunk = make_chunk(0, 2, 6, 6);
  for (std::size_t p = 0; p < 6; ++p) chunk.congested_paths.set(0, p);
  chunk.congested_paths.set(1, 3);
  chunk.true_links.set(0, 2);
  chunk.true_links.set(1, 5);
  chunk.invalidate_derived();
  sink.consume(chunk);
  sink.end();

  ASSERT_EQ(collected.chunks.size(), 1u);
  const measurement_chunk& masked = collected.chunks[0];
  EXPECT_FALSE(masked.fully_observed());
  EXPECT_EQ(masked.observed_paths.count(), 2u);
  // Congestion survives only on the observed paths...
  for (std::size_t p = 0; p < 6; ++p) {
    EXPECT_EQ(masked.congested_paths.test(0, p), p == 1 || p == 3) << p;
  }
  EXPECT_TRUE(masked.congested_paths.test(1, 3));
  // ...while the ground-truth plane is byte-for-byte intact.
  EXPECT_TRUE(masked.true_links.test(0, 2));
  EXPECT_TRUE(masked.true_links.test(1, 5));
  EXPECT_EQ(masked.true_links.count_row(0), 1u);

  // Masked chunks do not re-enter a policy sink: policies do not stack.
  EXPECT_THROW(sink.consume(masked), std::logic_error);
}

TEST(PolicySinkTest, FullBudgetPassesChunksThroughUnmasked) {
  const topology t = make_topo(5);
  const std::unique_ptr<probe_policy> policy =
      make_probe_policy(probe_policy_spec("round_robin,frac=1.0"));
  chunk_collector collected;
  probe_policy_sink sink(*policy, collected);
  sink.begin(t, 4);

  measurement_chunk chunk = make_chunk(0, 4, 5, 5);
  chunk.congested_paths.set(2, 4);
  chunk.invalidate_derived();
  sink.consume(chunk);

  ASSERT_EQ(collected.chunks.size(), 1u);
  EXPECT_TRUE(collected.chunks[0].fully_observed());
  EXPECT_TRUE(collected.chunks[0].congested_paths.test(2, 4));
}

TEST(PolicySinkTest, RejectsEmptyOrMisSizedSelections) {
  const topology t = make_topo(4);

  class broken_policy final : public probe_policy {
   public:
    explicit broken_policy(std::size_t size) : size_(size) {}
    void begin(const topology&, std::size_t) override {}
    bitvec select(std::size_t, std::size_t) override {
      return bitvec(size_);  // wrong size and/or no bit set.
    }
    std::size_t size_;
  };

  chunk_collector collected;
  measurement_chunk chunk = make_chunk(0, 1, 4, 4);
  chunk.invalidate_derived();

  broken_policy empty(4);  // right size, zero paths selected.
  probe_policy_sink empty_sink(empty, collected);
  empty_sink.begin(t, 1);
  EXPECT_THROW(empty_sink.consume(chunk), std::logic_error);

  broken_policy mis_sized(3);
  probe_policy_sink mis_sink(mis_sized, collected);
  mis_sink.begin(t, 1);
  EXPECT_THROW(mis_sink.consume(chunk), std::logic_error);
}

}  // namespace
}  // namespace ntom
