// The frac=1.0 contract: a full probe budget is a zero-copy
// pass-through, so every policy at frac=1.0 must be bit-identical to
// the unmasked pipeline — against the materialized fit, at every chunk
// size, through the batch facade, and through the windowed service.
// Partial budgets get the complementary check: the sliding-window
// service over a masked stream must match a fresh one-shot fit over
// exactly the masked chunks in the window (masked retire is exact).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ntom/api/experiment.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/service/service.hpp"

namespace ntom {
namespace {

constexpr const char* kFullBudgetPolicies[] = {
    "uniform,frac=1.0,seed=4",
    "round_robin,frac=1.0",
    "info_gain,frac=1.0",
};

run_config small_config() {
  run_config c;
  c.topo = "brite,n=10,hosts=30,paths=60";
  c.topo_seed = 5;
  c.scenario = "no_independence";
  c.scenario_opts.seed = 7;
  c.sim.intervals = 60;
  c.sim.packets_per_path = 60;
  c.sim.seed = 9;
  return c;
}

/// Copies every chunk of a pass so tests can slice arbitrary windows.
class chunk_collector final : public measurement_sink {
 public:
  void consume(const measurement_chunk& chunk) override {
    chunks.push_back(chunk);
  }
  std::vector<measurement_chunk> chunks;
};

TEST(FullBudgetIdentityTest, StreamedFitsMatchUnmaskedAtEveryChunk) {
  const run_config config = small_config();
  const run_artifacts run = prepare_run(config);

  for (const char* name : {"sparsity", "bayes-indep", "independence"}) {
    const std::unique_ptr<estimator> reference = make_estimator(name);
    reference->fit(run.topo(), run.data);

    for (const char* policy : kFullBudgetPolicies) {
      for (const std::size_t chunk : {1u, 7u, 64u}) {
        run_config masked_config = config;
        masked_config.plan.policy = policy;
        masked_config.stream.chunk_intervals = chunk;
        masked_config.reconcile();
        EXPECT_TRUE(masked_config.stream.enabled);

        const std::unique_ptr<estimator> streamed = make_estimator(name);
        estimator_fit_sink sink(*streamed);
        stream_experiment(run, masked_config, sink);

        if (streamed->caps().link_estimation) {
          const link_estimates a = streamed->links();
          const link_estimates b = reference->links();
          EXPECT_EQ(a.estimated, b.estimated)
              << name << " " << policy << " chunk " << chunk;
          ASSERT_EQ(a.congestion.size(), b.congestion.size());
          for (std::size_t e = 0; e < a.congestion.size(); ++e) {
            EXPECT_EQ(a.congestion[e], b.congestion[e])  // bitwise.
                << name << " " << policy << " chunk " << chunk << " link "
                << e;
          }
        }
        if (streamed->caps().boolean_inference) {
          for (std::size_t t = 0; t < run.data.intervals; ++t) {
            const bitvec congested = run.data.congested_paths_at(t);
            EXPECT_EQ(streamed->infer(congested), reference->infer(congested))
                << name << " " << policy << " chunk " << chunk << " interval "
                << t;
          }
        }
      }
    }
  }
}

TEST(FullBudgetIdentityTest, FacadeReportsMatchUnmasked) {
  const auto grid = [](const std::string& policy, std::size_t chunk) {
    experiment e;
    e.with_topology("brite,n=10,hosts=30,paths=60")
        .with_scenario("random_congestion")
        .with_scenario("no_independence")
        .with_estimators({"sparsity", "independence"})
        .replicas(2)
        .intervals(40);
    if (!policy.empty()) {
      e.with_policy(policy).with_streaming({true, chunk});
    }
    return e.run({.threads = 2, .base_seed = 77});
  };

  // Unmasked AND materialized: frac=1.0 must match across both the
  // masking and the execution strategy, at any chunk size.
  const auto ref_cells = grid("", 0).summarize();
  ASSERT_FALSE(ref_cells.empty());

  for (const char* policy : kFullBudgetPolicies) {
    for (const std::size_t chunk : {7u, 64u}) {
      const auto cells = grid(policy, chunk).summarize();
      ASSERT_EQ(cells.size(), ref_cells.size()) << policy;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].label, ref_cells[i].label);
        EXPECT_EQ(cells[i].series, ref_cells[i].series);
        EXPECT_EQ(cells[i].metric, ref_cells[i].metric);
        EXPECT_EQ(cells[i].mean, ref_cells[i].mean)  // bitwise.
            << policy << " chunk " << chunk << " cell " << cells[i].label
            << "/" << cells[i].series << "/" << cells[i].metric;
        EXPECT_EQ(cells[i].stddev, ref_cells[i].stddev);
      }
    }
  }
}

/// Fresh one-shot streaming fit over chunks [begin, end) — the
/// reference the windowed service must match bitwise.
link_estimates one_shot_links(const std::string& name, const topology& t,
                              const std::vector<measurement_chunk>& chunks,
                              std::size_t begin, std::size_t end) {
  const std::unique_ptr<estimator> est = make_estimator(name);
  std::size_t intervals = 0;
  for (std::size_t i = begin; i < end; ++i) intervals += chunks[i].count;
  est->begin_fit(t, intervals);
  for (std::size_t i = begin; i < end; ++i) est->consume(chunks[i]);
  est->end_fit();
  return est->links();
}

TEST(ServiceIdentityTest, WindowedFitsMatchOneShotOverMaskedStreams) {
  run_config config = small_config();
  config.sim.intervals = 300;
  config.stream.chunk_intervals = 30;
  // A partial budget: every chunk downstream of here carries a mask, so
  // this exercises the service's masked consume AND masked retire.
  config.plan.policy = "round_robin,frac=0.3";
  config.reconcile();

  const run_artifacts run = prepare_topology(config);
  chunk_collector collected;
  stream_experiment(run, config, collected);
  ASSERT_EQ(collected.chunks.size(), 10u);
  for (const measurement_chunk& chunk : collected.chunks) {
    ASSERT_FALSE(chunk.fully_observed());
  }

  for (const char* name : {"independence", "bayes-indep"}) {
    const std::size_t window = 3;
    service_config cfg;
    cfg.estimator = name;
    cfg.window_chunks = window;
    cfg.refit_every = 1;
    tomography_service service(cfg);
    service.begin_epoch(run.topo_ptr);

    for (std::size_t k = 0; k < collected.chunks.size(); ++k) {
      service.ingest(collected.chunks[k]);
      const std::size_t begin = k + 1 > window ? k + 1 - window : 0;
      const link_estimates reference =
          one_shot_links(name, run.topo(), collected.chunks, begin, k + 1);

      const std::shared_ptr<const service_snapshot> snap = service.snapshot();
      ASSERT_NE(snap, nullptr);
      EXPECT_TRUE(snap->verify());
      for (link_id e = 0; e < run.topo().num_links(); ++e) {
        const snapshot_link& got = snap->link_estimate(e);
        EXPECT_EQ(got.estimated, reference.estimated.test(e))
            << name << " step " << k << " link " << e;
        if (reference.estimated.test(e)) {
          EXPECT_EQ(got.congestion, reference.congestion[e])  // bitwise.
              << name << " step " << k << " link " << e;
        }
      }
    }
  }
}

TEST(ServiceIdentityTest, FullBudgetServiceMatchesUnmaskedService) {
  run_config config = small_config();
  config.sim.intervals = 200;
  config.stream.chunk_intervals = 25;
  config.stream.enabled = true;

  const run_artifacts run = prepare_topology(config);
  chunk_collector unmasked;
  stream_experiment(run, config, unmasked);

  run_config full_config = config;
  full_config.plan.policy = "info_gain,frac=1.0";
  full_config.reconcile();
  chunk_collector full;
  stream_experiment(run, full_config, full);

  // frac=1.0 forwards chunks untouched, so the two services see the
  // same stream; snapshots must agree bitwise at every step.
  ASSERT_EQ(full.chunks.size(), unmasked.chunks.size());
  service_config cfg;
  cfg.estimator = "independence";
  cfg.window_chunks = 4;
  cfg.refit_every = 1;
  tomography_service a(cfg);
  tomography_service b(cfg);
  a.begin_epoch(run.topo_ptr);
  b.begin_epoch(run.topo_ptr);
  for (std::size_t k = 0; k < full.chunks.size(); ++k) {
    ASSERT_TRUE(full.chunks[k].fully_observed()) << "chunk " << k;
    a.ingest(unmasked.chunks[k]);
    b.ingest(full.chunks[k]);
    const auto snap_a = a.snapshot();
    const auto snap_b = b.snapshot();
    ASSERT_NE(snap_a, nullptr);
    ASSERT_NE(snap_b, nullptr);
    for (link_id e = 0; e < run.topo().num_links(); ++e) {
      EXPECT_EQ(snap_a->link_estimate(e).estimated,
                snap_b->link_estimate(e).estimated)
          << "step " << k << " link " << e;
      EXPECT_EQ(snap_a->link_estimate(e).congestion,
                snap_b->link_estimate(e).congestion)
          << "step " << k << " link " << e;
    }
  }
}

}  // namespace
}  // namespace ntom
