// Masked-stream semantics of the downstream consumers: pathset_counter
// only counts fully observed sets (and its windowed retire subtracts
// exactly what a masked chunk added), empirical_truth keeps the truth
// plane full while tracking per-link visibility, the observation
// scorer survives zero-observed intervals, and the config/runner layer
// enforces the policy plumbing rules.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ntom/exp/evals.hpp"
#include "ntom/exp/metrics.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/sim/monitor.hpp"
#include "ntom/sim/truth.hpp"

namespace ntom {
namespace {

/// 3 links, 4 paths; same shape as the windowed-counter tests.
topology make_topo() {
  topology t(3);
  t.add_link({.as_number = 1, .router_links = {0}, .edge = false});
  t.add_link({.as_number = 1, .router_links = {1}, .edge = true});
  t.add_link({.as_number = 2, .router_links = {2}, .edge = false});
  t.add_path({0});
  t.add_path({0, 1});
  t.add_path({1, 2});
  t.add_path({2});
  t.finalize();
  return t;
}

/// Deterministic masked chunk stream: tiny xorshift for the planes, a
/// rotating partial mask on every chunk except each third (unmasked
/// chunks mixed in on purpose — consumers must handle both).
std::vector<measurement_chunk> make_masked_chunks(std::size_t n,
                                                  std::size_t paths,
                                                  std::size_t links) {
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<measurement_chunk> chunks;
  std::size_t first = 0;
  for (std::size_t c = 0; c < n; ++c) {
    measurement_chunk chunk;
    chunk.first_interval = first;
    chunk.count = 3 + (c % 4);
    chunk.congested_paths = bit_matrix(chunk.count, paths);
    chunk.true_links = bit_matrix(chunk.count, links);
    if (c % 3 != 2) {
      bitvec mask(paths);
      mask.set(c % paths);
      mask.set((c + 1) % paths);
      chunk.observed_paths = mask;
    }
    for (std::size_t i = 0; i < chunk.count; ++i) {
      for (std::size_t p = 0; p < paths; ++p) {
        const bool observed =
            chunk.fully_observed() || chunk.observed_paths.test(p);
        if (observed && (next() & 3) == 0) chunk.congested_paths.set(i, p);
      }
      for (std::size_t e = 0; e < links; ++e) {
        if ((next() & 3) == 0) chunk.true_links.set(i, e);
      }
    }
    first += chunk.count;
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

std::vector<bitvec> make_sets(std::size_t paths) {
  std::vector<bitvec> sets;
  bitvec single(paths);
  single.set(0);
  sets.push_back(single);
  bitvec pair(paths);
  pair.set(1);
  pair.set(2);
  sets.push_back(pair);
  bitvec all(paths);
  all.flip();
  sets.push_back(all);
  sets.push_back(bitvec(paths));  // empty set: vacuously good.
  return sets;
}

TEST(MaskedPathsetCounterTest, CountsOnlyFullyObservedSets) {
  const topology t = make_topo();
  pathset_counter counter(make_sets(t.num_paths()));
  counter.begin(t, 5);

  // Chunk 1: mask {0, 1}, 2 intervals, no congestion.
  measurement_chunk a;
  a.first_interval = 0;
  a.count = 2;
  a.congested_paths = bit_matrix(2, 4);
  a.true_links = bit_matrix(2, 3);
  bitvec mask(4);
  mask.set(0);
  mask.set(1);
  a.observed_paths = mask;
  counter.consume(a);

  // Chunk 2: unmasked, 3 intervals, path 0 congested once.
  measurement_chunk b;
  b.first_interval = 2;
  b.count = 3;
  b.congested_paths = bit_matrix(3, 4);
  b.congested_paths.set(1, 0);
  b.true_links = bit_matrix(3, 3);
  counter.consume(b);
  counter.end();

  // Set {0}: observed in all 5 intervals, good in 4.
  EXPECT_EQ(counter.observed_intervals()[0], 5u);
  EXPECT_EQ(counter.counts()[0], 4u);
  // Set {1, 2}: path 2 unobserved in chunk 1, so only chunk 2 counts.
  EXPECT_EQ(counter.observed_intervals()[1], 3u);
  EXPECT_EQ(counter.counts()[1], 3u);
  // The full set is only observed in the unmasked chunk.
  EXPECT_EQ(counter.observed_intervals()[2], 3u);
  // The empty set is vacuously observed and good everywhere.
  EXPECT_EQ(counter.observed_intervals()[3], 5u);
  EXPECT_EQ(counter.counts()[3], 5u);

  // always-good needs >= 1 observation AND no violation: every path
  // was observed here (the unmasked chunk covers them), path 0 was
  // congested once.
  EXPECT_FALSE(counter.always_good_paths().test(0));
  EXPECT_TRUE(counter.always_good_paths().test(2));
  EXPECT_TRUE(counter.always_good_paths().test(3));
}

TEST(MaskedPathsetCounterTest, NeverObservedPathIsNotAlwaysGood) {
  const topology t = make_topo();
  pathset_counter counter;
  counter.begin(t, 2);
  measurement_chunk a;
  a.first_interval = 0;
  a.count = 2;
  a.congested_paths = bit_matrix(2, 4);
  bitvec mask(4);
  mask.set(0);
  a.observed_paths = mask;
  a.true_links = bit_matrix(2, 3);
  counter.consume(a);
  counter.end();
  // Path 0 was observed good; paths 1-3 were never observed, and an
  // unobserved path must not be declared always-good (it merely READS
  // as good because masking zeroes its congested bits).
  EXPECT_TRUE(counter.always_good_paths().test(0));
  for (std::size_t p = 1; p < 4; ++p) {
    EXPECT_FALSE(counter.always_good_paths().test(p)) << p;
  }
}

TEST(MaskedPathsetCounterTest, WindowEqualsFreshCounterAtEveryStep) {
  const topology t = make_topo();
  const std::vector<measurement_chunk> chunks =
      make_masked_chunks(9, t.num_paths(), t.num_links());

  for (const std::size_t window : {2u, 4u}) {
    pathset_counter windowed(make_sets(t.num_paths()), /*windowed=*/true);
    windowed.begin(t, 0);
    std::size_t oldest = 0;
    for (std::size_t k = 0; k < chunks.size(); ++k) {
      windowed.consume(chunks[k]);
      if (k + 1 - oldest > window) windowed.retire(chunks[oldest++]);

      pathset_counter fresh(make_sets(t.num_paths()), /*windowed=*/true);
      fresh.begin(t, 0);
      for (std::size_t i = oldest; i <= k; ++i) fresh.consume(chunks[i]);

      EXPECT_EQ(windowed.intervals(), fresh.intervals())
          << "W=" << window << " step " << k;
      EXPECT_EQ(windowed.counts(), fresh.counts())
          << "W=" << window << " step " << k;
      EXPECT_EQ(windowed.observed_intervals(), fresh.observed_intervals())
          << "W=" << window << " step " << k;
      EXPECT_EQ(windowed.window_always_good(), fresh.window_always_good())
          << "W=" << window << " step " << k;
    }
  }
}

TEST(MaskedEmpiricalTruthTest, TruthStaysFullWhileVisibilityIsTracked) {
  const topology t = make_topo();
  empirical_truth truth;
  truth.begin(t, 4);

  // Mask {path 3} = {link 2}: links 0 and 1 are invisible this chunk.
  measurement_chunk a;
  a.first_interval = 0;
  a.count = 2;
  a.congested_paths = bit_matrix(2, 4);
  a.true_links = bit_matrix(2, 3);
  a.true_links.set(0, 0);  // truly congested while unobservable.
  a.true_links.set(1, 2);
  bitvec mask(4);
  mask.set(3);
  a.observed_paths = mask;
  truth.consume(a);

  measurement_chunk b;
  b.first_interval = 2;
  b.count = 2;
  b.congested_paths = bit_matrix(2, 4);
  b.true_links = bit_matrix(2, 3);
  b.true_links.set(0, 0);
  truth.consume(b);

  // Truth counters never qualify with the mask...
  EXPECT_EQ(truth.congested_count(0), 2u);
  EXPECT_EQ(truth.congested_count(2), 1u);
  EXPECT_TRUE(truth.ever_congested_links().test(0));
  // ...but visibility does: link 0 only in the unmasked chunk, link 2
  // (covered by observed path 3) in both.
  EXPECT_EQ(truth.observed_count(0), 2u);
  EXPECT_EQ(truth.observed_count(2), 4u);
  EXPECT_DOUBLE_EQ(truth.observed_frequency(2), 1.0);
}

TEST(MaskedEmpiricalTruthTest, WindowEqualsFreshTruthAtEveryStep) {
  const topology t = make_topo();
  const std::vector<measurement_chunk> chunks =
      make_masked_chunks(8, t.num_paths(), t.num_links());

  const std::size_t window = 3;
  empirical_truth windowed(/*windowed=*/true);
  windowed.begin(t, 0);
  std::size_t oldest = 0;
  for (std::size_t k = 0; k < chunks.size(); ++k) {
    windowed.consume(chunks[k]);
    if (k + 1 - oldest > window) windowed.retire(chunks[oldest++]);

    empirical_truth fresh(/*windowed=*/true);
    fresh.begin(t, 0);
    for (std::size_t i = oldest; i <= k; ++i) fresh.consume(chunks[i]);

    EXPECT_EQ(windowed.intervals(), fresh.intervals()) << "step " << k;
    for (link_id e = 0; e < t.num_links(); ++e) {
      EXPECT_EQ(windowed.congested_count(e), fresh.congested_count(e))
          << "step " << k << " link " << e;
      EXPECT_EQ(windowed.observed_count(e), fresh.observed_count(e))
          << "step " << k << " link " << e;
    }
  }
}

TEST(MaskedScorerTest, EmptyWindowAndUndefinedRatesReportZeroNotNaN) {
  const topology t = make_topo();

  // An empty window: no interval was ever scored.
  const observation_metrics empty = observation_scorer(t).result();
  EXPECT_EQ(empty.observed_intervals, 0u);
  EXPECT_EQ(empty.intervals_scored, 0u);
  EXPECT_EQ(empty.explained_rate, 0.0);
  EXPECT_EQ(empty.consistency_rate, 0.0);
  EXPECT_FALSE(std::isnan(empty.inferred_links_mean));

  // Every observed path congested: the interval has no consistency
  // sample (good = observed \ congested is empty); none congested: no
  // explained sample. Each undefined rate stays 0, never NaN.
  observation_scorer all_congested(t);
  bitvec inferred(t.num_links());
  inferred.set(0);
  bitvec mask(t.num_paths());
  mask.set(0);
  bitvec congested = mask;  // the single observed path is congested.
  all_congested.add_interval(inferred, congested, mask);
  const observation_metrics no_good = all_congested.result();
  EXPECT_EQ(no_good.observed_intervals, 1u);
  EXPECT_DOUBLE_EQ(no_good.explained_rate, 1.0);  // path 0 covers link 0.
  EXPECT_EQ(no_good.consistency_rate, 0.0);
  EXPECT_FALSE(std::isnan(no_good.consistency_rate));

  observation_scorer all_good(t);
  all_good.add_interval(inferred, bitvec(t.num_paths()), mask);
  const observation_metrics no_congested = all_good.result();
  EXPECT_EQ(no_congested.observed_intervals, 1u);
  EXPECT_EQ(no_congested.intervals_scored, 0u);
  EXPECT_EQ(no_congested.explained_rate, 0.0);
  // Path 0 contains inferred link 0 while observed good: contradicted.
  EXPECT_DOUBLE_EQ(no_congested.consistency_rate, 0.0);
}

TEST(MaskedScorerTest, PartialMaskRestrictsTheDenominators) {
  const topology t = make_topo();
  observation_scorer scorer(t);
  bitvec inferred(t.num_links());
  inferred.set(0);
  bitvec congested(t.num_paths());
  congested.set(0);  // path 0 covers link 0: explained.
  bitvec mask(t.num_paths());
  mask.set(0);
  mask.set(3);  // path 3 observed good and does not contain link 0.
  scorer.add_interval(inferred, congested, mask);
  // Paths 1-2 (which DO contain link 0, and would drag consistency to
  // 1/3 unmasked) are outside the mask and must not contradict.
  const observation_metrics m = scorer.result();
  EXPECT_EQ(m.observed_intervals, 1u);
  EXPECT_DOUBLE_EQ(m.explained_rate, 1.0);
  EXPECT_DOUBLE_EQ(m.consistency_rate, 1.0);
}

TEST(MaskedScorerTest, EmptyMaskEqualsUnmaskedOverload) {
  const topology t = make_topo();
  observation_scorer masked(t);
  observation_scorer sized(t);
  observation_scorer legacy(t);
  bitvec inferred(t.num_links());
  inferred.set(1);
  bitvec congested(t.num_paths());
  congested.set(1);
  masked.add_interval(inferred, congested, bitvec());
  // An all-zero mask IS the fully-observed sentinel (bitvec::empty()
  // means "no bit set"; probe_policy_sink rejects empty selections, so
  // a truly unobserved interval never reaches the scorer).
  sized.add_interval(inferred, congested, bitvec(t.num_paths()));
  legacy.add_interval(inferred, congested);
  const observation_metrics s = sized.result();
  EXPECT_EQ(s.observed_intervals, 1u);
  EXPECT_EQ(s.consistency_rate, legacy.result().consistency_rate);
  const observation_metrics a = masked.result();
  const observation_metrics b = legacy.result();
  EXPECT_EQ(a.explained_rate, b.explained_rate);
  EXPECT_EQ(a.consistency_rate, b.consistency_rate);
  EXPECT_EQ(a.observed_intervals, b.observed_intervals);
}

TEST(PolicyPlumbingTest, ReconcileLiftsValidatesAndForcesStreaming) {
  run_config config;
  config.topo = "toy";
  config.scenario =
      spec("random_congestion").with_option("policy", "uniform,frac=0.5");
  config.sim.intervals = 10;
  EXPECT_FALSE(config.stream.enabled);
  config.reconcile();
  EXPECT_EQ(config.plan.policy, "uniform,frac=0.5");
  EXPECT_TRUE(config.stream.enabled);

  // The scenario spec's policy option wins over an explicit plan.policy.
  run_config overridden = config;
  overridden.plan.policy = "round_robin,frac=0.1";
  overridden.reconcile();
  EXPECT_EQ(overridden.plan.policy, "uniform,frac=0.5");

  // Validation is eager: a bad policy spec fails at reconcile, not
  // mid-stream (plain scenario here — no spec option to win).
  run_config bad;
  bad.topo = "toy";
  bad.scenario = "random_congestion";
  bad.sim.intervals = 10;
  bad.plan.policy = "uniform,frac=0";
  EXPECT_THROW(bad.reconcile(), spec_error);
  bad.plan.policy = "no_such_policy";
  EXPECT_THROW(bad.reconcile(), spec_error);

  // Capture + policy composes since format v2 grew the observed-path
  // mask plane: reconcile just forces streamed execution.
  run_config capturing;
  capturing.topo = "toy";
  capturing.scenario = "random_congestion";
  capturing.sim.intervals = 10;
  capturing.plan.policy = "uniform,frac=0.5";
  capturing.capture.path = "masked.trc";
  capturing.reconcile();
  EXPECT_TRUE(capturing.stream.enabled);
}

TEST(PolicyPlumbingTest, MaterializeSinkRejectsMaskedChunks) {
  const topology t = make_topo();
  experiment_data data;
  materialize_sink store(data);
  store.begin(t, 2);
  measurement_chunk chunk;
  chunk.first_interval = 0;
  chunk.count = 2;
  chunk.congested_paths = bit_matrix(2, t.num_paths());
  chunk.true_links = bit_matrix(2, t.num_links());
  bitvec mask(t.num_paths());
  mask.set(0);
  chunk.observed_paths = mask;
  EXPECT_THROW(store.consume(chunk), std::logic_error);
}

TEST(PolicyPlumbingTest, EvalRejectsNonStreamingEstimatorsUnderPolicy) {
  run_config config;
  config.topo = "brite,n=10,hosts=30,paths=60";
  config.topo_seed = 3;
  config.scenario = "random_congestion";
  config.sim.intervals = 20;
  config.plan.policy = "uniform,frac=0.5";
  config.reconcile();
  const run_artifacts run = prepare_topology(config);

  // bayes-corr needs the materialized store, which has no mask plane.
  const batch_eval_fn eval =
      estimator_eval({"sparsity", "bayes-corr"},
                     {/*boolean_metrics=*/true, /*link_error_metrics=*/false});
  EXPECT_THROW((void)eval(config, run), spec_error);

  // The streaming-only subset works under the same config.
  const batch_eval_fn streaming_eval =
      estimator_eval({"sparsity", "bayes-indep"},
                     {/*boolean_metrics=*/true, /*link_error_metrics=*/false});
  EXPECT_FALSE(streaming_eval(config, run).empty());
}

}  // namespace
}  // namespace ntom
