// Integration tests: the full pipeline at reduced scale, checking the
// paper's qualitative claims end to end (the benches reproduce the
// figures at full fidelity; these tests pin the directions).
#include <gtest/gtest.h>

#include "ntom/corr/correlation.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/infer/bayes_independence.hpp"
#include "ntom/infer/sparsity.hpp"
#include "ntom/tomo/correlation_complete.hpp"
#include "ntom/tomo/independence.hpp"

namespace ntom {
namespace {

run_config base_config(const topology_spec& topo,
                       const scenario_spec& scenario) {
  run_config c;
  c.topo = topo;
  c.topo_seed = 11;
  c.scenario = scenario;
  c.scenario_opts.seed = 13;
  c.sim.intervals = 250;
  c.sim.packets_per_path = 150;
  c.sim.seed = 17;
  return c;
}

const char* small_brite = "brite,n=16,hosts=60,paths=120";
const char* small_sparse = "sparse,mid=12,stubs=60,paths=140";

TEST(EndToEndTest, InferenceAccurateOnBriteRandomCongestion) {
  // Fig. 3, first group: everything works on dense topologies with
  // random independent congestion. Oracle monitoring isolates the
  // algorithmic behaviour from probing noise (noise robustness is
  // covered by the probing tests and the fig3 bench).
  auto config =
      base_config(small_brite, "random_congestion");
  config.sim.oracle_monitor = true;
  const auto run = prepare_run(config);
  const auto sparsity = score_inference(run, [&](const bitvec& c) {
    return infer_sparsity(run.topo(), make_observation(run.topo(), c));
  });
  EXPECT_GT(sparsity.detection_rate, 0.75);
  EXPECT_LT(sparsity.false_positive_rate, 0.2);
}

TEST(EndToEndTest, ProbabilityComputationAccurateOnBrite) {
  // Fig. 4(a) direction: errors well under 0.1 on Brite. Probing-noise
  // false positives shrink with the probe budget; use a realistic one
  // (the toy probing test covers the noisy regime).
  auto config =
      base_config(small_brite, "random_congestion");
  config.sim.packets_per_path = 400;
  config.sim.intervals = 400;
  const auto run = prepare_run(config);
  const ground_truth truth = run.make_truth();
  const path_observations obs(run.data);
  const bitvec potcong =
      potentially_congested_links(run.topo(), obs.always_good_paths());

  const auto complete = compute_correlation_complete(run.topo(), run.data);
  const double err = mean_of(link_absolute_errors(
      run.topo(), truth, complete.estimates.to_link_estimates(), potcong));
  EXPECT_LT(err, 0.08);
}

TEST(EndToEndTest, IndependenceWorseUnderCorrelation) {
  // Fig. 4 direction: under No-Independence, the Independence baseline
  // has higher error than Correlation-complete.
  auto config =
      base_config(small_brite, "no_independence");
  config.sim.oracle_monitor = true;
  const auto run = prepare_run(config);
  const ground_truth truth = run.make_truth();
  const path_observations obs(run.data);
  const bitvec potcong =
      potentially_congested_links(run.topo(), obs.always_good_paths());

  const auto indep = compute_independence(run.topo(), run.data);
  const auto complete = compute_correlation_complete(run.topo(), run.data);
  const double err_indep =
      mean_of(link_absolute_errors(run.topo(), truth, indep.links, potcong));
  const double err_complete = mean_of(link_absolute_errors(
      run.topo(), truth, complete.estimates.to_link_estimates(), potcong));
  EXPECT_LT(err_complete, err_indep + 0.01);
}

TEST(EndToEndTest, SparseTopologyHurtsInference) {
  // Fig. 3, last group: the same random-congestion scenario on a
  // Sparse topology degrades Boolean Inference.
  const auto brite_run = prepare_run(
      base_config(small_brite, "random_congestion"));
  const auto sparse_run = prepare_run(
      base_config(small_sparse, "random_congestion"));

  const auto score = [](const run_artifacts& run) {
    const bayes_independence_inferencer inferencer(run.topo(), run.data);
    return score_inference(
        run, [&](const bitvec& c) { return inferencer.infer(c); });
  };
  const auto brite_m = score(brite_run);
  const auto sparse_m = score(sparse_run);
  // Degradation shows as worse false positives (the paper: 45% FP) or
  // detection.
  EXPECT_GT(sparse_m.false_positive_rate + (1.0 - sparse_m.detection_rate),
            brite_m.false_positive_rate + (1.0 - brite_m.detection_rate));
}

TEST(EndToEndTest, ProbabilityComputationSurvivesSparseTopology) {
  // §5.4: Probability Computation stays useful on Sparse topologies.
  const auto run = prepare_run(
      base_config(small_sparse, "random_congestion"));
  const ground_truth truth = run.make_truth();
  const path_observations obs(run.data);
  const bitvec potcong =
      potentially_congested_links(run.topo(), obs.always_good_paths());

  const auto complete = compute_correlation_complete(run.topo(), run.data);
  const double err = mean_of(link_absolute_errors(
      run.topo(), truth, complete.estimates.to_link_estimates(), potcong));
  EXPECT_LT(err, 0.15);
}

TEST(EndToEndTest, NonStationarityDoesNotBreakProbabilities) {
  // §4/§5.4: the estimates are time averages; redrawing probabilities
  // mid-run must not inflate the error much.
  auto config =
      base_config(small_brite, "no_independence");
  config.scenario_opts.nonstationary = true;
  config.scenario_opts.phase_length = 25;
  const auto run = prepare_run(config);
  const ground_truth truth = run.make_truth();
  const path_observations obs(run.data);
  const bitvec potcong =
      potentially_congested_links(run.topo(), obs.always_good_paths());

  const auto complete = compute_correlation_complete(run.topo(), run.data);
  const double err = mean_of(link_absolute_errors(
      run.topo(), truth, complete.estimates.to_link_estimates(), potcong));
  EXPECT_LT(err, 0.12);
}

}  // namespace
}  // namespace ntom
