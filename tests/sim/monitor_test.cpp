#include "ntom/sim/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ntom {
namespace {

/// Hand-built experiment data: 3 paths over 4 intervals.
/// good matrix (path x interval):
///   p0: 1 1 0 1
///   p1: 1 0 0 1
///   p2: 1 1 1 1   (always good)
experiment_data make_data() {
  experiment_data data;
  data.intervals = 4;
  data.path_good = bit_matrix(3, 4);
  auto& g = data.path_good;
  g.set(0, 0); g.set(0, 1); g.set(0, 3);
  g.set(1, 0); g.set(1, 3);
  g.set(2, 0); g.set(2, 1); g.set(2, 2); g.set(2, 3);
  data.always_good_paths = bitvec(3);
  data.always_good_paths.set(2);
  return data;
}

TEST(PathObservationsTest, SinglePathCounts) {
  const auto data = make_data();
  const path_observations obs(data);
  bitvec p0(3);
  p0.set(0);
  EXPECT_EQ(obs.count_all_good(p0), 3u);
  EXPECT_DOUBLE_EQ(obs.empirical_all_good(p0), 0.75);
}

TEST(PathObservationsTest, JointCounts) {
  const auto data = make_data();
  const path_observations obs(data);
  bitvec p01(3);
  p01.set(0);
  p01.set(1);
  // Both good in intervals 0 and 3.
  EXPECT_EQ(obs.count_all_good(p01), 2u);
  EXPECT_DOUBLE_EQ(obs.empirical_all_good(p01), 0.5);
}

TEST(PathObservationsTest, EmptySetVacuouslyGood) {
  const auto data = make_data();
  const path_observations obs(data);
  EXPECT_EQ(obs.count_all_good(bitvec(3)), 4u);
  EXPECT_DOUBLE_EQ(obs.empirical_all_good(bitvec(3)), 1.0);
}

TEST(PathObservationsTest, LogOfPositiveCount) {
  const auto data = make_data();
  const path_observations obs(data);
  bitvec p1(3);
  p1.set(1);
  const auto logp = obs.log_empirical_all_good(p1);
  ASSERT_TRUE(logp.has_value());
  EXPECT_NEAR(*logp, std::log(0.5), 1e-12);
}

TEST(PathObservationsTest, LogOfZeroCountIsNullopt) {
  experiment_data data;
  data.intervals = 4;
  data.path_good = bit_matrix(1, 4);  // never good.
  const path_observations obs(data);
  bitvec p0(1);
  p0.set(0);
  EXPECT_FALSE(obs.log_empirical_all_good(p0).has_value());
}

TEST(PathObservationsTest, AlwaysGoodPassthrough) {
  const auto data = make_data();
  const path_observations obs(data);
  EXPECT_TRUE(obs.always_good_paths().test(2));
  EXPECT_FALSE(obs.always_good_paths().test(0));
}

TEST(PathObservationsTest, JointIsMonotoneInSetSize) {
  // Adding paths can only reduce the all-good count.
  const auto data = make_data();
  const path_observations obs(data);
  bitvec acc(3);
  std::size_t prev = obs.count_all_good(acc);
  for (path_id p = 0; p < 3; ++p) {
    acc.set(p);
    const std::size_t cur = obs.count_all_good(acc);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace ntom
