#include "ntom/sim/congestion.hpp"

#include <gtest/gtest.h>

#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using namespace topogen;

congestion_model single_phase_model(const topology& t,
                                    std::vector<std::pair<std::size_t, double>> qs) {
  congestion_model m;
  m.phase_q.assign(1, std::vector<double>(t.num_router_links(), 0.0));
  m.congestable_links = bitvec(t.num_links());
  for (const auto& [r, q] : qs) m.phase_q[0][r] = q;
  return m;
}

TEST(CongestionModelTest, PhaseOfIntervalStationary) {
  const topology t = make_toy(toy_case::case1);
  const auto m = single_phase_model(t, {{0, 0.5}});
  EXPECT_EQ(m.phase_of_interval(0), 0u);
  EXPECT_EQ(m.phase_of_interval(1000000), 0u);
}

TEST(CongestionModelTest, PhaseOfIntervalMultiPhase) {
  congestion_model m;
  m.phase_q.assign(3, {});
  m.phase_length = 10;
  EXPECT_EQ(m.phase_of_interval(0), 0u);
  EXPECT_EQ(m.phase_of_interval(9), 0u);
  EXPECT_EQ(m.phase_of_interval(10), 1u);
  EXPECT_EQ(m.phase_of_interval(29), 2u);
  EXPECT_EQ(m.phase_of_interval(999), 2u);  // clamped to last phase.
}

TEST(SamplerTest, ZeroProbabilityNeverCongests) {
  const topology t = make_toy(toy_case::case1);
  const auto m = single_phase_model(t, {});
  link_state_sampler sampler(t, m, 5);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(sampler.sample_interval(i).empty());
  }
}

TEST(SamplerTest, ProbabilityOneAlwaysCongests) {
  const topology t = make_toy(toy_case::case1);
  // Router link 0 drives e1 only.
  const auto m = single_phase_model(t, {{0, 1.0}});
  link_state_sampler sampler(t, m, 5);
  for (std::size_t i = 0; i < 50; ++i) {
    const bitvec state = sampler.sample_interval(i);
    EXPECT_TRUE(state.test(toy_e1));
    EXPECT_EQ(state.count(), 1u);
  }
}

TEST(SamplerTest, SharedRouterLinkCongestsBothUsers) {
  const topology t = make_toy(toy_case::case1);
  // Router link 4 is shared by e2 and e3 in Case 1.
  const auto m = single_phase_model(t, {{4, 1.0}});
  link_state_sampler sampler(t, m, 5);
  const bitvec state = sampler.sample_interval(0);
  EXPECT_TRUE(state.test(toy_e2));
  EXPECT_TRUE(state.test(toy_e3));
  EXPECT_FALSE(state.test(toy_e1));
}

TEST(SamplerTest, FrequencyMatchesProbability) {
  const topology t = make_toy(toy_case::case1);
  const auto m = single_phase_model(t, {{0, 0.3}});
  link_state_sampler sampler(t, m, 7);
  std::size_t congested = 0;
  const std::size_t trials = 20000;
  for (std::size_t i = 0; i < trials; ++i) {
    congested += sampler.sample_interval(i).test(toy_e1) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(congested) / trials, 0.3, 0.01);
}

TEST(SamplerTest, PerfectCorrelationOfSharedLinks) {
  const topology t = make_toy(toy_case::case1);
  const auto m = single_phase_model(t, {{4, 0.4}});
  link_state_sampler sampler(t, m, 11);
  for (std::size_t i = 0; i < 2000; ++i) {
    const bitvec state = sampler.sample_interval(i);
    EXPECT_EQ(state.test(toy_e2), state.test(toy_e3))
        << "shared router link must congest e2 and e3 together";
  }
}

TEST(SamplerTest, DeterministicInSeed) {
  const topology t = make_toy(toy_case::case1);
  const auto m = single_phase_model(t, {{0, 0.5}, {4, 0.5}});
  link_state_sampler a(t, m, 99), b(t, m, 99);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.sample_interval(i), b.sample_interval(i));
  }
}

TEST(SamplerTest, PhaseSwitchChangesIntensity) {
  const topology t = make_toy(toy_case::case1);
  congestion_model m;
  m.phase_q.assign(2, std::vector<double>(t.num_router_links(), 0.0));
  m.phase_q[0][0] = 0.05;
  m.phase_q[1][0] = 0.95;
  m.phase_length = 1000;
  m.congestable_links = bitvec(t.num_links());

  link_state_sampler sampler(t, m, 13);
  std::size_t early = 0, late = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    early += sampler.sample_interval(i).test(toy_e1);
  }
  for (std::size_t i = 1000; i < 2000; ++i) {
    late += sampler.sample_interval(i).test(toy_e1);
  }
  EXPECT_LT(early, 120u);
  EXPECT_GT(late, 880u);
}

}  // namespace
}  // namespace ntom
