#include "ntom/sim/congestion.hpp"

#include <gtest/gtest.h>

#include "ntom/sim/truth.hpp"

#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using namespace topogen;

congestion_model single_phase_model(const topology& t,
                                    std::vector<std::pair<std::size_t, double>> qs) {
  congestion_model m;
  m.phase_q.assign(1, std::vector<double>(t.num_router_links(), 0.0));
  m.congestable_links = bitvec(t.num_links());
  for (const auto& [r, q] : qs) m.phase_q[0][r] = q;
  return m;
}

TEST(CongestionModelTest, PhaseOfIntervalStationary) {
  const topology t = make_toy(toy_case::case1);
  const auto m = single_phase_model(t, {{0, 0.5}});
  EXPECT_EQ(m.phase_of_interval(0), 0u);
  EXPECT_EQ(m.phase_of_interval(1000000), 0u);
}

TEST(CongestionModelTest, PhaseOfIntervalMultiPhase) {
  congestion_model m;
  m.phase_q.assign(3, {});
  m.phase_length = 10;
  EXPECT_EQ(m.phase_of_interval(0), 0u);
  EXPECT_EQ(m.phase_of_interval(9), 0u);
  EXPECT_EQ(m.phase_of_interval(10), 1u);
  EXPECT_EQ(m.phase_of_interval(29), 2u);
  EXPECT_EQ(m.phase_of_interval(999), 2u);  // clamped to last phase.
}

TEST(SamplerTest, ZeroProbabilityNeverCongests) {
  const topology t = make_toy(toy_case::case1);
  const auto m = single_phase_model(t, {});
  link_state_sampler sampler(t, m, 5);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(sampler.sample_interval(i).empty());
  }
}

TEST(SamplerTest, ProbabilityOneAlwaysCongests) {
  const topology t = make_toy(toy_case::case1);
  // Router link 0 drives e1 only.
  const auto m = single_phase_model(t, {{0, 1.0}});
  link_state_sampler sampler(t, m, 5);
  for (std::size_t i = 0; i < 50; ++i) {
    const bitvec state = sampler.sample_interval(i);
    EXPECT_TRUE(state.test(toy_e1));
    EXPECT_EQ(state.count(), 1u);
  }
}

TEST(SamplerTest, SharedRouterLinkCongestsBothUsers) {
  const topology t = make_toy(toy_case::case1);
  // Router link 4 is shared by e2 and e3 in Case 1.
  const auto m = single_phase_model(t, {{4, 1.0}});
  link_state_sampler sampler(t, m, 5);
  const bitvec state = sampler.sample_interval(0);
  EXPECT_TRUE(state.test(toy_e2));
  EXPECT_TRUE(state.test(toy_e3));
  EXPECT_FALSE(state.test(toy_e1));
}

TEST(SamplerTest, FrequencyMatchesProbability) {
  const topology t = make_toy(toy_case::case1);
  const auto m = single_phase_model(t, {{0, 0.3}});
  link_state_sampler sampler(t, m, 7);
  std::size_t congested = 0;
  const std::size_t trials = 20000;
  for (std::size_t i = 0; i < trials; ++i) {
    congested += sampler.sample_interval(i).test(toy_e1) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(congested) / trials, 0.3, 0.01);
}

TEST(SamplerTest, PerfectCorrelationOfSharedLinks) {
  const topology t = make_toy(toy_case::case1);
  const auto m = single_phase_model(t, {{4, 0.4}});
  link_state_sampler sampler(t, m, 11);
  for (std::size_t i = 0; i < 2000; ++i) {
    const bitvec state = sampler.sample_interval(i);
    EXPECT_EQ(state.test(toy_e2), state.test(toy_e3))
        << "shared router link must congest e2 and e3 together";
  }
}

TEST(SamplerTest, DeterministicInSeed) {
  const topology t = make_toy(toy_case::case1);
  const auto m = single_phase_model(t, {{0, 0.5}, {4, 0.5}});
  link_state_sampler a(t, m, 99), b(t, m, 99);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.sample_interval(i), b.sample_interval(i));
  }
}

TEST(SamplerTest, RiskGroupFiresAsOneUnit) {
  const topology t = make_toy(toy_case::case1);
  // One group over the private router links of e1 and e4: the two links
  // must always congest together, never alone.
  auto m = single_phase_model(t, {});
  m.groups.push_back({{0, 3}});
  m.phase_group_q.assign(1, {0.6});
  m.congestable_links.set(toy_e1);
  m.congestable_links.set(toy_e4);

  link_state_sampler sampler(t, m, 7);
  std::size_t fired = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    const bitvec congested = sampler.sample_interval(i);
    EXPECT_EQ(congested.test(toy_e1), congested.test(toy_e4)) << i;
    EXPECT_FALSE(congested.test(toy_e2)) << i;
    fired += congested.test(toy_e1);
  }
  EXPECT_GT(fired, 100u);  // q = 0.6 over 300 intervals.
  EXPECT_LT(fired, 250u);
}

TEST(SamplerTest, GilbertChainCongestsInBursts) {
  const topology t = make_toy(toy_case::case1);
  auto m = single_phase_model(t, {});
  // Driver 4 is shared by e2 and e3: both must flip together. Hard
  // states (q_bad=1, q_good=0) make congestion equal the chain state,
  // so consecutive intervals agree with probability 1 - 1/10.
  m.chains.push_back({4, 0.1, 0.1, 0.0, 1.0, false});
  m.congestable_links.set(toy_e2);
  m.congestable_links.set(toy_e3);

  link_state_sampler sampler(t, m, 11);
  std::size_t congested_count = 0, agree = 0;
  bool prev = false;
  for (std::size_t i = 0; i < 2000; ++i) {
    const bitvec congested = sampler.sample_interval(i);
    EXPECT_EQ(congested.test(toy_e2), congested.test(toy_e3)) << i;
    EXPECT_FALSE(congested.test(toy_e1)) << i;
    const bool now = congested.test(toy_e2);
    if (i > 0 && now == prev) ++agree;
    prev = now;
    congested_count += now;
  }
  // Stationary marginal is 0.5, but sojourns average 10 intervals:
  // strong positive lag-1 correlation, nothing like i.i.d. draws.
  EXPECT_GT(congested_count, 600u);
  EXPECT_LT(congested_count, 1400u);
  EXPECT_GT(agree, 1600u);  // ~90% agreement vs ~50% for i.i.d.
}

TEST(SamplerTest, GroupAndChainStreamsReplayDeterministically) {
  const topology t = make_toy(toy_case::case1);
  auto m = single_phase_model(t, {{0, 0.3}});
  m.groups.push_back({{1, 3}});
  m.phase_group_q.assign(1, {0.4});
  m.chains.push_back({4, 0.2, 0.3, 0.05, 0.9, true});

  link_state_sampler a(t, m, 99), b(t, m, 99);
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(a.sample_interval(i), b.sample_interval(i)) << i;
  }
}

TEST(SamplerTest, MixedDriversMatchAnalyticTruth) {
  const topology t = make_toy(toy_case::case1);
  auto m = single_phase_model(t, {{0, 0.2}});
  m.groups.push_back({{1, 3}});  // drives e2 and e4 together.
  m.phase_group_q.assign(1, {0.3});
  m.chains.push_back({4, 0.125, 0.125, 0.0, 0.8, false});  // e2, e3.

  const std::size_t T = 20000;
  const ground_truth truth(t, m, T);
  std::vector<std::size_t> counts(t.num_links(), 0);
  link_state_sampler sampler(t, m, 5);
  for (std::size_t i = 0; i < T; ++i) {
    sampler.sample_interval(i).for_each([&](std::size_t e) { ++counts[e]; });
  }
  for (link_id e = 0; e < t.num_links(); ++e) {
    const double freq = static_cast<double>(counts[e]) / T;
    EXPECT_NEAR(freq, truth.link_congestion_probability(e), 0.03)
        << "link " << e;
  }
}

TEST(SamplerTest, PhaseSwitchChangesIntensity) {
  const topology t = make_toy(toy_case::case1);
  congestion_model m;
  m.phase_q.assign(2, std::vector<double>(t.num_router_links(), 0.0));
  m.phase_q[0][0] = 0.05;
  m.phase_q[1][0] = 0.95;
  m.phase_length = 1000;
  m.congestable_links = bitvec(t.num_links());

  link_state_sampler sampler(t, m, 13);
  std::size_t early = 0, late = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    early += sampler.sample_interval(i).test(toy_e1);
  }
  for (std::size_t i = 1000; i < 2000; ++i) {
    late += sampler.sample_interval(i).test(toy_e1);
  }
  EXPECT_LT(early, 120u);
  EXPECT_GT(late, 880u);
}

}  // namespace
}  // namespace ntom
