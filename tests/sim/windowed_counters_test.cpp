// Sliding-window counter correctness: a windowed pathset_counter /
// empirical_truth that consumed chunks [0, k) and retired chunks
// [0, j) must hold state bit-identical to a fresh counter fed only
// chunks [j, k) — retire() subtracts exact integer contributions, so
// the equality is exact at every step, not just in the limit.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ntom/sim/monitor.hpp"
#include "ntom/sim/truth.hpp"

namespace ntom {
namespace {

/// 3 links, 4 paths over the links; enough structure for non-trivial
/// path sets.
topology make_topo() {
  topology t(3);
  t.add_link({.as_number = 1, .router_links = {0}, .edge = false});
  t.add_link({.as_number = 1, .router_links = {1}, .edge = true});
  t.add_link({.as_number = 2, .router_links = {2}, .edge = false});
  t.add_path({0});
  t.add_path({0, 1});
  t.add_path({1, 2});
  t.add_path({2});
  t.finalize();
  return t;
}

/// Deterministic pseudo-random chunk stream (tiny xorshift — no
/// simulator dependency, odd chunk sizes on purpose).
std::vector<measurement_chunk> make_chunks(std::size_t n, std::size_t paths,
                                           std::size_t links) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<measurement_chunk> chunks;
  std::size_t first = 0;
  for (std::size_t c = 0; c < n; ++c) {
    measurement_chunk chunk;
    chunk.first_interval = first;
    chunk.count = 3 + (c % 4);  // 3..6 intervals, uneven.
    chunk.congested_paths = bit_matrix(chunk.count, paths);
    chunk.true_links = bit_matrix(chunk.count, links);
    for (std::size_t i = 0; i < chunk.count; ++i) {
      for (std::size_t p = 0; p < paths; ++p) {
        if ((next() & 3) == 0) chunk.congested_paths.set(i, p);
      }
      for (std::size_t e = 0; e < links; ++e) {
        if ((next() & 3) == 0) chunk.true_links.set(i, e);
      }
    }
    first += chunk.count;
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

std::vector<bitvec> make_sets(std::size_t paths) {
  std::vector<bitvec> sets;
  bitvec single(paths);
  single.set(0);
  sets.push_back(single);
  bitvec pair(paths);
  pair.set(1);
  pair.set(2);
  sets.push_back(pair);
  bitvec all(paths);
  all.flip();
  sets.push_back(all);
  sets.push_back(bitvec(paths));  // empty set: vacuously good.
  return sets;
}

TEST(WindowedPathsetCounterTest, WindowEqualsFreshCounterAtEveryStep) {
  const topology t = make_topo();
  const std::vector<measurement_chunk> chunks =
      make_chunks(7, t.num_paths(), t.num_links());

  for (const std::size_t window : {2u, 4u}) {
    pathset_counter windowed(make_sets(t.num_paths()), /*windowed=*/true);
    windowed.begin(t, 0);
    std::size_t oldest = 0;
    for (std::size_t k = 0; k < chunks.size(); ++k) {
      windowed.consume(chunks[k]);
      if (k + 1 - oldest > window) windowed.retire(chunks[oldest++]);

      // Fresh one-shot pass over exactly the chunks in the window.
      pathset_counter fresh(make_sets(t.num_paths()));
      std::size_t intervals = 0;
      for (std::size_t i = oldest; i <= k; ++i) intervals += chunks[i].count;
      fresh.begin(t, intervals);
      for (std::size_t i = oldest; i <= k; ++i) fresh.consume(chunks[i]);
      fresh.end();

      EXPECT_EQ(windowed.intervals(), fresh.intervals())
          << "W=" << window << " step " << k;
      EXPECT_EQ(windowed.counts(), fresh.counts())
          << "W=" << window << " step " << k;
      EXPECT_EQ(windowed.window_always_good(), fresh.always_good_paths())
          << "W=" << window << " step " << k;
    }
  }
}

TEST(WindowedPathsetCounterTest, OneShotModeIsUnchanged) {
  const topology t = make_topo();
  const std::vector<measurement_chunk> chunks =
      make_chunks(4, t.num_paths(), t.num_links());
  std::size_t intervals = 0;
  for (const measurement_chunk& c : chunks) intervals += c.count;

  pathset_counter counter(make_sets(t.num_paths()));
  counter.begin(t, intervals);
  for (const measurement_chunk& c : chunks) counter.consume(c);
  counter.end();
  EXPECT_FALSE(counter.windowed());
  EXPECT_EQ(counter.intervals(), intervals);
  // window_always_good falls back to the sticky bits in one-shot mode.
  EXPECT_EQ(counter.window_always_good(), counter.always_good_paths());
}

TEST(WindowedEmpiricalTruthTest, WindowEqualsFreshTruthAtEveryStep) {
  const topology t = make_topo();
  const std::vector<measurement_chunk> chunks =
      make_chunks(7, t.num_paths(), t.num_links());

  const std::size_t window = 3;
  empirical_truth windowed(/*windowed=*/true);
  windowed.begin(t, 0);
  std::size_t oldest = 0;
  for (std::size_t k = 0; k < chunks.size(); ++k) {
    windowed.consume(chunks[k]);
    if (k + 1 - oldest > window) windowed.retire(chunks[oldest++]);

    empirical_truth fresh;
    std::size_t intervals = 0;
    for (std::size_t i = oldest; i <= k; ++i) intervals += chunks[i].count;
    fresh.begin(t, intervals);
    for (std::size_t i = oldest; i <= k; ++i) fresh.consume(chunks[i]);
    fresh.end();

    EXPECT_EQ(windowed.intervals(), fresh.intervals()) << "step " << k;
    for (link_id e = 0; e < t.num_links(); ++e) {
      EXPECT_EQ(windowed.congested_count(e), fresh.congested_count(e))
          << "step " << k << " link " << e;
    }
    EXPECT_EQ(windowed.window_congested_links(),
              fresh.window_congested_links())
        << "step " << k;
  }
}

}  // namespace
}  // namespace ntom
