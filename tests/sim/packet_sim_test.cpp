#include "ntom/sim/packet_sim.hpp"

#include <gtest/gtest.h>

#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using namespace topogen;

congestion_model model_with(const topology& t,
                            std::vector<std::pair<std::size_t, double>> qs) {
  congestion_model m;
  m.phase_q.assign(1, std::vector<double>(t.num_router_links(), 0.0));
  m.congestable_links = bitvec(t.num_links());
  for (const auto& [r, q] : qs) m.phase_q[0][r] = q;
  return m;
}

TEST(PacketSimTest, ShapesAreConsistent) {
  const topology t = make_toy(toy_case::case1);
  const auto m = model_with(t, {{0, 0.3}});
  sim_params sim;
  sim.intervals = 50;
  const auto data = run_experiment(t, m, sim);
  EXPECT_EQ(data.intervals, 50u);
  EXPECT_EQ(data.path_good.rows(), t.num_paths());
  EXPECT_EQ(data.path_good.cols(), 50u);
  EXPECT_EQ(data.true_links.rows(), 50u);
  EXPECT_EQ(data.true_links.cols(), t.num_links());
}

TEST(PacketSimTest, NoCongestionMostlyGoodObservations) {
  const topology t = make_toy(toy_case::case1);
  const auto m = model_with(t, {});
  sim_params sim;
  sim.intervals = 100;
  sim.packets_per_path = 500;
  const auto data = run_experiment(t, m, sim);
  // E2E monitoring has false positives (the paper's §2 caveat): a good
  // short path whose links draw loss near f can cross the threshold
  // under probing noise. The margin keeps this rare but not zero.
  const std::size_t good = data.path_good.count();
  EXPECT_GE(good, 97 * t.num_paths());  // >= 97% of path-intervals.
  EXPECT_TRUE(data.ever_congested_links.empty());  // truth is clean.
}

TEST(PacketSimTest, NoCongestionOracleAllGood) {
  const topology t = make_toy(toy_case::case1);
  const auto m = model_with(t, {});
  sim_params sim;
  sim.intervals = 100;
  sim.oracle_monitor = true;
  const auto data = run_experiment(t, m, sim);
  EXPECT_EQ(data.always_good_paths.count(), t.num_paths());
}

TEST(PacketSimTest, OracleMonitorMatchesLinkStates) {
  const topology t = make_toy(toy_case::case1);
  const auto m = model_with(t, {{0, 0.5}});  // drives e1 = paths p1, p2.
  sim_params sim;
  sim.intervals = 200;
  sim.oracle_monitor = true;
  const auto data = run_experiment(t, m, sim);
  for (std::size_t i = 0; i < data.intervals; ++i) {
    const bool e1_congested = data.true_links.test(i, toy_e1);
    EXPECT_EQ(!data.path_good.test(toy_p1, i), e1_congested);
    EXPECT_EQ(!data.path_good.test(toy_p2, i), e1_congested);
    EXPECT_TRUE(data.path_good.test(toy_p3, i));
  }
}

TEST(PacketSimTest, PathGoodBitsComplementCongestedBits) {
  const topology t = make_toy(toy_case::case1);
  const auto m = model_with(t, {{0, 0.4}, {4, 0.3}});
  sim_params sim;
  sim.intervals = 120;
  const auto data = run_experiment(t, m, sim);
  for (std::size_t i = 0; i < data.intervals; ++i) {
    const bitvec congested = data.congested_paths_at(i);
    for (path_id p = 0; p < t.num_paths(); ++p) {
      EXPECT_NE(data.path_good.test(p, i), congested.test(p));
    }
  }
}

TEST(PacketSimTest, EverCongestedTracksTruth) {
  const topology t = make_toy(toy_case::case1);
  const auto m = model_with(t, {{0, 0.5}});
  sim_params sim;
  sim.intervals = 200;
  const auto data = run_experiment(t, m, sim);
  EXPECT_TRUE(data.ever_congested_links.test(toy_e1));
  EXPECT_FALSE(data.ever_congested_links.test(toy_e2));
  EXPECT_FALSE(data.ever_congested_links.test(toy_e4));
}

TEST(PacketSimTest, DeterministicInSeed) {
  const topology t = make_toy(toy_case::case1);
  const auto m = model_with(t, {{0, 0.4}, {4, 0.2}});
  sim_params sim;
  sim.intervals = 80;
  sim.seed = 31;
  const auto a = run_experiment(t, m, sim);
  const auto b = run_experiment(t, m, sim);
  EXPECT_TRUE(a.path_good == b.path_good);
  EXPECT_TRUE(a.true_links == b.true_links);
}

TEST(PacketSimTest, ProbingDetectsSevereCongestion) {
  const topology t = make_toy(toy_case::case1);
  const auto m = model_with(t, {{0, 1.0}});  // e1 always congested.
  sim_params sim;
  sim.intervals = 300;
  sim.packets_per_path = 300;
  const auto data = run_experiment(t, m, sim);
  // Paths through e1 should be observed congested in the vast majority
  // of intervals (loss is drawn U(0.01,1), mostly well above threshold).
  std::size_t congested_p1 = 0;
  for (std::size_t i = 0; i < data.intervals; ++i) {
    congested_p1 += !data.path_good.test(toy_p1, i);
  }
  EXPECT_GT(congested_p1, 250u);
}

TEST(PacketSimTest, PathObservationFrequencyTracksLinkProbability) {
  const topology t = make_toy(toy_case::case1);
  const double q = 0.35;
  const auto m = model_with(t, {{3, q}});  // e4 -> path p3 only.
  sim_params sim;
  sim.intervals = 3000;
  sim.packets_per_path = 400;
  const auto data = run_experiment(t, m, sim);
  std::size_t congested_p3 = 0;
  for (std::size_t i = 0; i < data.intervals; ++i) {
    congested_p3 += !data.path_good.test(toy_p3, i);
  }
  const double freq = static_cast<double>(congested_p3) /
                      static_cast<double>(data.intervals);
  // Probing noise: loss drawn just above f may evade the f^d threshold,
  // so allow a modest band around q.
  EXPECT_NEAR(freq, q, 0.06);
}

}  // namespace
}  // namespace ntom
