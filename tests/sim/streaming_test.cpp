// Streaming-vs-materialized equivalence: the same seed must produce
// bit-identical experiment views through every consumption path, at
// every chunk size — the ISSUE-3 reproducibility contract.
#include <gtest/gtest.h>

#include "ntom/sim/monitor.hpp"
#include "ntom/sim/packet_sim.hpp"
#include "ntom/sim/scenario.hpp"
#include "ntom/sim/truth.hpp"
#include "ntom/topogen/brite.hpp"
#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using namespace topogen;

struct sim_fixture {
  topology topo;
  congestion_model model;
  sim_params sim;
};

sim_fixture make_fixture(std::size_t intervals) {
  sim_fixture f{make_toy(toy_case::case1), {}, {}};
  scenario_params sp;
  sp.seed = 11;
  f.model = make_scenario(f.topo, "random_congestion", sp);
  f.sim.intervals = intervals;
  f.sim.packets_per_path = 60;  // real probing: noisy observations.
  f.sim.seed = 23;
  return f;
}

constexpr std::size_t chunk_sizes[] = {1, 7, 64, 100};

TEST(StreamingEquivalenceTest, MaterializedStoreBitIdenticalAtAnyChunk) {
  const sim_fixture f = make_fixture(100);
  const experiment_data reference = run_experiment(f.topo, f.model, f.sim);
  ASSERT_EQ(reference.intervals, 100u);

  for (const std::size_t chunk : chunk_sizes) {
    experiment_data streamed;
    materialize_sink sink(streamed);
    run_experiment_streaming(f.topo, f.model, f.sim, sink, chunk);
    EXPECT_EQ(streamed.intervals, reference.intervals) << "chunk " << chunk;
    EXPECT_TRUE(streamed.path_good == reference.path_good)
        << "chunk " << chunk;
    EXPECT_TRUE(streamed.true_links == reference.true_links)
        << "chunk " << chunk;
    EXPECT_EQ(streamed.always_good_paths, reference.always_good_paths)
        << "chunk " << chunk;
    EXPECT_EQ(streamed.ever_congested_links, reference.ever_congested_links)
        << "chunk " << chunk;
  }
}

TEST(StreamingEquivalenceTest, AccumulatingObservationsMatchView) {
  const sim_fixture f = make_fixture(100);
  const experiment_data data = run_experiment(f.topo, f.model, f.sim);
  const path_observations view(data);

  for (const std::size_t chunk : chunk_sizes) {
    path_observations streamed;
    run_experiment_streaming(f.topo, f.model, f.sim, streamed, chunk);
    EXPECT_EQ(streamed.intervals(), view.intervals());
    EXPECT_EQ(streamed.always_good_paths(), view.always_good_paths())
        << "chunk " << chunk;
    EXPECT_TRUE(streamed.good_matrix() == view.good_matrix())
        << "chunk " << chunk;
    // Every query answers identically: singles, pairs, the full set.
    for (path_id p = 0; p < f.topo.num_paths(); ++p) {
      bitvec single(f.topo.num_paths());
      single.set(p);
      EXPECT_EQ(streamed.count_all_good(single), view.count_all_good(single));
      for (path_id q = p + 1; q < f.topo.num_paths(); ++q) {
        bitvec pair = single;
        pair.set(q);
        EXPECT_EQ(streamed.count_all_good(pair), view.count_all_good(pair));
      }
    }
    bitvec all(f.topo.num_paths());
    all.flip();
    EXPECT_EQ(streamed.count_all_good(all), view.count_all_good(all));
  }
}

TEST(StreamingEquivalenceTest, PathsetCounterMatchesObservations) {
  const sim_fixture f = make_fixture(100);
  const experiment_data data = run_experiment(f.topo, f.model, f.sim);
  const path_observations view(data);

  // A mixed family: empty set, singles, pairs, everything.
  std::vector<bitvec> family;
  family.emplace_back(f.topo.num_paths());
  for (path_id p = 0; p < f.topo.num_paths(); ++p) {
    bitvec single(f.topo.num_paths());
    single.set(p);
    family.push_back(single);
    for (path_id q = p + 1; q < f.topo.num_paths(); ++q) {
      bitvec pair = single;
      pair.set(q);
      family.push_back(pair);
    }
  }
  bitvec all(f.topo.num_paths());
  all.flip();
  family.push_back(all);

  for (const std::size_t chunk : chunk_sizes) {
    pathset_counter counter(family);
    run_experiment_streaming(f.topo, f.model, f.sim, counter, chunk);
    EXPECT_EQ(counter.intervals(), view.intervals());
    EXPECT_EQ(counter.always_good_paths(), view.always_good_paths())
        << "chunk " << chunk;
    ASSERT_EQ(counter.counts().size(), family.size());
    for (std::size_t i = 0; i < family.size(); ++i) {
      EXPECT_EQ(counter.counts()[i], view.count_all_good(family[i]))
          << "chunk " << chunk << " set " << family[i].to_string();
    }
  }
}

TEST(StreamingEquivalenceTest, EmpiricalTruthMatchesStore) {
  const sim_fixture f = make_fixture(100);
  const experiment_data data = run_experiment(f.topo, f.model, f.sim);

  for (const std::size_t chunk : chunk_sizes) {
    empirical_truth truth;
    run_experiment_streaming(f.topo, f.model, f.sim, truth, chunk);
    EXPECT_EQ(truth.ever_congested_links(), data.ever_congested_links)
        << "chunk " << chunk;
    const bit_matrix by_link = data.true_links.transposed();
    for (link_id e = 0; e < f.topo.num_links(); ++e) {
      EXPECT_EQ(truth.congested_count(e), by_link.count_row(e))
          << "chunk " << chunk << " link " << e;
    }
  }
}

TEST(StreamingEquivalenceTest, CorrelatedScenariosBitIdenticalAtAnyChunk) {
  // The correlated-failure family carries sampler state across
  // intervals (group draws, Gilbert chains, drifting phases); every
  // replay at every chunk size must still reproduce the identical
  // stream — streaming is an execution strategy, never a model change.
  brite_params bp;
  bp.seed = 31;
  const topology topo = generate_brite(bp);
  for (const char* name : {"srlg", "gilbert", "hotspot_drift"}) {
    scenario_params sp;
    sp.seed = 13;
    sp.nonstationary = true;  // ignored where not applicable.
    sp.phase_length = 25;
    sp.num_phases = 4;
    const congestion_model model = make_scenario(topo, name, sp);

    sim_params sim;
    sim.intervals = 100;
    sim.packets_per_path = 60;
    sim.seed = 29;
    const experiment_data reference = run_experiment(topo, model, sim);

    for (const std::size_t chunk : chunk_sizes) {
      experiment_data streamed;
      materialize_sink sink(streamed);
      run_experiment_streaming(topo, model, sim, sink, chunk);
      EXPECT_TRUE(streamed.path_good == reference.path_good)
          << name << " chunk " << chunk;
      EXPECT_TRUE(streamed.true_links == reference.true_links)
          << name << " chunk " << chunk;
      EXPECT_EQ(streamed.always_good_paths, reference.always_good_paths)
          << name << " chunk " << chunk;
      EXPECT_EQ(streamed.ever_congested_links, reference.ever_congested_links)
          << name << " chunk " << chunk;
    }
  }
}

TEST(StreamingEquivalenceTest, FanoutFeedsAllConsumersOnePass) {
  const sim_fixture f = make_fixture(100);
  const experiment_data reference = run_experiment(f.topo, f.model, f.sim);

  experiment_data materialized;
  materialize_sink store(materialized);
  path_observations obs;
  empirical_truth truth;
  fanout_sink fanout({&store, &obs, &truth});
  run_experiment_streaming(f.topo, f.model, f.sim, fanout, 7);

  EXPECT_TRUE(materialized.path_good == reference.path_good);
  EXPECT_TRUE(obs.good_matrix() == reference.path_good);
  EXPECT_EQ(truth.ever_congested_links(), reference.ever_congested_links);
}

}  // namespace
}  // namespace ntom
