#include "ntom/sim/loss_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ntom {
namespace {

TEST(LossModelTest, GoodLossStaysBelowThreshold) {
  rng r(1);
  for (int i = 0; i < 5000; ++i) {
    const double loss = sample_link_loss(r, false);
    EXPECT_GE(loss, 0.0);
    EXPECT_LE(loss, default_loss_threshold);
    EXPECT_FALSE(link_loss_is_congested(loss));
  }
}

TEST(LossModelTest, CongestedLossExceedsThreshold) {
  rng r(2);
  for (int i = 0; i < 5000; ++i) {
    const double loss = sample_link_loss(r, true);
    EXPECT_GE(loss, default_loss_threshold);
    EXPECT_LE(loss, 1.0);
  }
}

TEST(LossModelTest, CustomThresholdRespected) {
  rng r(3);
  const double f = 0.05;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(sample_link_loss(r, false, f), f);
    EXPECT_GE(sample_link_loss(r, true, f), f);
  }
}

TEST(PathThresholdTest, SingleLinkEqualsF) {
  EXPECT_NEAR(path_congestion_threshold(1), default_loss_threshold, 1e-12);
}

TEST(PathThresholdTest, ComposesAcrossLinks) {
  // 1-(1-f)^d, monotone in d, < d*f.
  double prev = 0.0;
  for (std::size_t d = 1; d <= 10; ++d) {
    const double thr = path_congestion_threshold(d);
    EXPECT_GT(thr, prev);
    EXPECT_LT(thr, static_cast<double>(d) * default_loss_threshold + 1e-12);
    prev = thr;
  }
  EXPECT_NEAR(path_congestion_threshold(2), 1.0 - 0.99 * 0.99, 1e-12);
}

TEST(PathThresholdTest, ZeroLinksZeroThreshold) {
  EXPECT_DOUBLE_EQ(path_congestion_threshold(0), 0.0);
}

TEST(LossClassifierTest, BoundaryIsGood) {
  EXPECT_FALSE(link_loss_is_congested(default_loss_threshold));
  EXPECT_TRUE(link_loss_is_congested(default_loss_threshold + 1e-9));
  EXPECT_FALSE(link_loss_is_congested(0.0));
}

}  // namespace
}  // namespace ntom
