#include "ntom/sim/scenario.hpp"

#include <gtest/gtest.h>

#include "ntom/topogen/brite.hpp"

namespace ntom {
namespace {

topology test_topology() {
  topogen::brite_params p;
  p.seed = 17;
  return topogen::generate_brite(p);
}

TEST(ScenarioTest, RandomCongestionTargetsRoughlyTenPercent) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, "random_congestion", sp);
  const double covered = static_cast<double>(t.covered_links().count());
  const double congestable = static_cast<double>(model.congestable_links.count());
  // Driver sharing can pull in a few extra links; stay in a loose band.
  EXPECT_GT(congestable, 0.05 * covered);
  EXPECT_LT(congestable, 0.30 * covered);
}

TEST(ScenarioTest, StationaryModelsHaveOnePhase) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, "random_congestion", sp);
  EXPECT_EQ(model.num_phases(), 1u);
}

TEST(ScenarioTest, ConcentratedPicksEdgeLinks) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, "concentrated_congestion", sp);
  // Every directly-driven link must be an edge link; links dragged in
  // via shared router links may not be, so check the drivers' targets:
  // at least 80% of congestable links are edge links.
  std::size_t edge = 0;
  model.congestable_links.for_each([&](std::size_t e) {
    if (t.link(static_cast<link_id>(e)).edge) ++edge;
  });
  EXPECT_GE(edge * 5, model.congestable_links.count() * 4);
}

TEST(ScenarioTest, NoIndependenceEveryLinkHasPartner) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, "no_independence", sp);
  ASSERT_GE(model.congestable_links.count(), 2u);

  // Every congestable link shares a driver router link with another
  // congestable link (the defining property of the scenario).
  const auto& q = model.phase_q[0];
  model.congestable_links.for_each([&](std::size_t le) {
    const auto e = static_cast<link_id>(le);
    bool has_partner = false;
    for (const router_link_id r : t.link(e).router_links) {
      if (q[r] <= 0.0) continue;
      for (const link_id other : t.links_on_router_link(r)) {
        if (other != e) has_partner = true;
      }
    }
    EXPECT_TRUE(has_partner) << "link " << e << " has no correlated partner";
  });
}

TEST(ScenarioTest, NonStationaryDrawsDistinctPhases) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  sp.nonstationary = true;
  sp.num_phases = 4;
  sp.phase_length = 25;
  const auto model = make_scenario(t, "random_congestion", sp);
  EXPECT_EQ(model.num_phases(), 4u);
  EXPECT_EQ(model.phase_length, 25u);

  // Same driver set across phases, different values.
  bool any_differ = false;
  for (std::size_t r = 0; r < model.phase_q[0].size(); ++r) {
    EXPECT_EQ(model.phase_q[0][r] > 0.0, model.phase_q[1][r] > 0.0)
        << "driver set must not change across phases";
    if (model.phase_q[0][r] != model.phase_q[1][r]) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(ScenarioTest, SpecOptionsOverrideParams) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model =
      make_scenario(t, "random_congestion,nonstationary,phase_length=20", sp);
  // The spec turned nonstationarity on; num_phases stays at the params'
  // default 1 phase but the phase length must come from the spec.
  EXPECT_EQ(model.phase_length, 20u);

  const auto fat = make_scenario(t, "random_congestion,fraction=0.3", sp);
  const auto thin = make_scenario(t, "random_congestion,fraction=0.05", sp);
  EXPECT_GT(fat.congestable_links.count(), thin.congestable_links.count());
}

TEST(ScenarioTest, NoStationarityLayersOnBaseScenario) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  sp.num_phases = 3;

  // The registered layered scenario forces nonstationarity and builds
  // the base scenario bit-identically.
  const auto layered = make_scenario(t, "no_stationarity", sp);
  EXPECT_EQ(layered.num_phases(), 3u);

  scenario_params base = sp;
  base.nonstationary = true;
  const auto direct = make_scenario(t, "no_independence", base);
  EXPECT_EQ(layered.phase_q, direct.phase_q);
  EXPECT_EQ(layered.congestable_links, direct.congestable_links);

  // And the base is selectable by option.
  const auto random_base =
      make_scenario(t, "no_stationarity,base=random_congestion", sp);
  const auto random_direct = make_scenario(t, "random_congestion", base);
  EXPECT_EQ(random_base.phase_q, random_direct.phase_q);
  EXPECT_EQ(random_base.congestable_links, random_direct.congestable_links);
}

TEST(ScenarioTest, ApplyScenarioSpecIsIdempotent) {
  scenario_params sp;
  const scenario_spec s = "no_stationarity,phase_length=12,fraction=0.15";
  const scenario_params once = apply_scenario_spec(s, sp);
  const scenario_params twice = apply_scenario_spec(s, once);
  EXPECT_TRUE(once.nonstationary);
  EXPECT_EQ(once.phase_length, 12u);
  EXPECT_DOUBLE_EQ(once.congestable_fraction, 0.15);
  EXPECT_EQ(twice.nonstationary, once.nonstationary);
  EXPECT_EQ(twice.phase_length, once.phase_length);
  EXPECT_DOUBLE_EQ(twice.congestable_fraction, once.congestable_fraction);
}

TEST(ScenarioTest, DeterministicInSeed) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 5;
  const auto a = make_scenario(t, "no_independence", sp);
  const auto b = make_scenario(t, "no_independence", sp);
  EXPECT_EQ(a.phase_q, b.phase_q);
  EXPECT_EQ(a.congestable_links, b.congestable_links);
}

TEST(ScenarioTest, NamesAreHuman) {
  EXPECT_EQ(scenario_label("random_congestion"), "Random Congestion");
  EXPECT_EQ(scenario_label("concentrated_congestion"),
            "Concentrated Congestion");
  EXPECT_EQ(scenario_label("no_independence"), "No Independence");
  EXPECT_EQ(scenario_label("no_stationarity"), "No Stationarity");
  EXPECT_EQ(scenario_label("random_congestion,label=Custom"), "Custom");
}

TEST(ScenarioTest, AliasesResolve) {
  for (const char* alias : {"random", "concentrated", "noindep", "nostat"}) {
    EXPECT_TRUE(scenario_registry().contains(alias)) << alias;
  }
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 5;
  const auto by_alias = make_scenario(t, "noindep", sp);
  const auto by_name = make_scenario(t, "no_independence", sp);
  EXPECT_EQ(by_alias.phase_q, by_name.phase_q);
}

TEST(ScenarioTest, UnknownScenarioAndOptionThrow) {
  const topology t = test_topology();
  scenario_params sp;
  EXPECT_THROW((void)make_scenario(t, "rush_hour", sp), spec_error);
  EXPECT_THROW((void)make_scenario(t, "random_congestion,strength=9", sp),
               spec_error);
  EXPECT_THROW((void)make_scenario(t, "random_congestion,phase_length=0", sp),
               spec_error);
  EXPECT_THROW((void)make_scenario(t, "no_stationarity,base=no_stationarity", sp),
               spec_error);
}

TEST(ScenarioTest, ProbabilitiesAreValid) {
  const topology t = test_topology();
  for (const char* name : {"random_congestion", "concentrated_congestion",
                           "no_independence", "no_stationarity"}) {
    scenario_params sp;
    sp.seed = 11;
    const auto model = make_scenario(t, name, sp);
    for (const auto& phase : model.phase_q) {
      for (const double q : phase) {
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace ntom
