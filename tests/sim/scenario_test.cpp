#include "ntom/sim/scenario.hpp"

#include <gtest/gtest.h>

#include "ntom/sim/truth.hpp"
#include "ntom/topogen/brite.hpp"

namespace ntom {
namespace {

topology test_topology() {
  topogen::brite_params p;
  p.seed = 17;
  return topogen::generate_brite(p);
}

TEST(ScenarioTest, RandomCongestionTargetsRoughlyTenPercent) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, "random_congestion", sp);
  const double covered = static_cast<double>(t.covered_links().count());
  const double congestable = static_cast<double>(model.congestable_links.count());
  // Driver sharing can pull in a few extra links; stay in a loose band.
  EXPECT_GT(congestable, 0.05 * covered);
  EXPECT_LT(congestable, 0.30 * covered);
}

TEST(ScenarioTest, StationaryModelsHaveOnePhase) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, "random_congestion", sp);
  EXPECT_EQ(model.num_phases(), 1u);
}

TEST(ScenarioTest, ConcentratedPicksEdgeLinks) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, "concentrated_congestion", sp);
  // Every directly-driven link must be an edge link; links dragged in
  // via shared router links may not be, so check the drivers' targets:
  // at least 80% of congestable links are edge links.
  std::size_t edge = 0;
  model.congestable_links.for_each([&](std::size_t e) {
    if (t.link(static_cast<link_id>(e)).edge) ++edge;
  });
  EXPECT_GE(edge * 5, model.congestable_links.count() * 4);
}

TEST(ScenarioTest, NoIndependenceEveryLinkHasPartner) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, "no_independence", sp);
  ASSERT_GE(model.congestable_links.count(), 2u);

  // Every congestable link shares a driver router link with another
  // congestable link (the defining property of the scenario).
  const auto& q = model.phase_q[0];
  model.congestable_links.for_each([&](std::size_t le) {
    const auto e = static_cast<link_id>(le);
    bool has_partner = false;
    for (const router_link_id r : t.link(e).router_links) {
      if (q[r] <= 0.0) continue;
      for (const link_id other : t.links_on_router_link(r)) {
        if (other != e) has_partner = true;
      }
    }
    EXPECT_TRUE(has_partner) << "link " << e << " has no correlated partner";
  });
}

TEST(ScenarioTest, NonStationaryDrawsDistinctPhases) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  sp.nonstationary = true;
  sp.num_phases = 4;
  sp.phase_length = 25;
  const auto model = make_scenario(t, "random_congestion", sp);
  EXPECT_EQ(model.num_phases(), 4u);
  EXPECT_EQ(model.phase_length, 25u);

  // Same driver set across phases, different values.
  bool any_differ = false;
  for (std::size_t r = 0; r < model.phase_q[0].size(); ++r) {
    EXPECT_EQ(model.phase_q[0][r] > 0.0, model.phase_q[1][r] > 0.0)
        << "driver set must not change across phases";
    if (model.phase_q[0][r] != model.phase_q[1][r]) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(ScenarioTest, SpecOptionsOverrideParams) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model =
      make_scenario(t, "random_congestion,nonstationary,phase_length=20", sp);
  // The spec turned nonstationarity on; num_phases stays at the params'
  // default 1 phase but the phase length must come from the spec.
  EXPECT_EQ(model.phase_length, 20u);

  const auto fat = make_scenario(t, "random_congestion,fraction=0.3", sp);
  const auto thin = make_scenario(t, "random_congestion,fraction=0.05", sp);
  EXPECT_GT(fat.congestable_links.count(), thin.congestable_links.count());
}

TEST(ScenarioTest, NoStationarityLayersOnBaseScenario) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  sp.num_phases = 3;

  // The registered layered scenario forces nonstationarity and builds
  // the base scenario bit-identically.
  const auto layered = make_scenario(t, "no_stationarity", sp);
  EXPECT_EQ(layered.num_phases(), 3u);

  scenario_params base = sp;
  base.nonstationary = true;
  const auto direct = make_scenario(t, "no_independence", base);
  EXPECT_EQ(layered.phase_q, direct.phase_q);
  EXPECT_EQ(layered.congestable_links, direct.congestable_links);

  // And the base is selectable by option.
  const auto random_base =
      make_scenario(t, "no_stationarity,base=random_congestion", sp);
  const auto random_direct = make_scenario(t, "random_congestion", base);
  EXPECT_EQ(random_base.phase_q, random_direct.phase_q);
  EXPECT_EQ(random_base.congestable_links, random_direct.congestable_links);
}

TEST(ScenarioTest, ApplyScenarioSpecIsIdempotent) {
  scenario_params sp;
  const scenario_spec s = "no_stationarity,phase_length=12,fraction=0.15";
  const scenario_params once = apply_scenario_spec(s, sp);
  const scenario_params twice = apply_scenario_spec(s, once);
  EXPECT_TRUE(once.nonstationary);
  EXPECT_EQ(once.phase_length, 12u);
  EXPECT_DOUBLE_EQ(once.congestable_fraction, 0.15);
  EXPECT_EQ(twice.nonstationary, once.nonstationary);
  EXPECT_EQ(twice.phase_length, once.phase_length);
  EXPECT_DOUBLE_EQ(twice.congestable_fraction, once.congestable_fraction);
}

TEST(ScenarioTest, DeterministicInSeed) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 5;
  const auto a = make_scenario(t, "no_independence", sp);
  const auto b = make_scenario(t, "no_independence", sp);
  EXPECT_EQ(a.phase_q, b.phase_q);
  EXPECT_EQ(a.congestable_links, b.congestable_links);
}

TEST(CorrelatedScenarioTest, SrlgBuildsGroupsFromAsClustering) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, "srlg", sp);
  ASSERT_FALSE(model.groups.empty());
  ASSERT_EQ(model.phase_group_q.size(), 1u);
  ASSERT_EQ(model.phase_group_q[0].size(), model.groups.size());
  for (const double q : model.phase_group_q[0]) {
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
  EXPECT_GT(model.congestable_links.count(), 1u);
  // Every group clusters one AS: all member router links carry a link
  // of that AS, and groups hold at least min_group covered links.
  for (const risk_group& g : model.groups) {
    EXPECT_FALSE(g.members.empty());
    bitvec driven(t.num_links());
    for (const router_link_id r : g.members) {
      for (const link_id e : t.links_on_router_link(r)) driven.set(e);
    }
    driven &= t.covered_links();
    EXPECT_GE(driven.count(), 2u);
  }
}

TEST(CorrelatedScenarioTest, SrlgRespectsOptions) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto wide = make_scenario(t, "srlg,fraction=0.4", sp);
  const auto narrow = make_scenario(t, "srlg,fraction=0.05", sp);
  EXPECT_GE(wide.groups.size(), narrow.groups.size());
  // An impossible group size empties the model instead of crashing.
  const auto empty = make_scenario(t, "srlg,min_group=100000", sp);
  EXPECT_TRUE(empty.groups.empty());
  EXPECT_EQ(empty.congestable_links.count(), 0u);
  EXPECT_THROW((void)make_scenario(t, "srlg,min_group=0", sp), spec_error);
}

TEST(CorrelatedScenarioTest, SrlgNonstationaryRedrawsGroupProbabilities) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  sp.nonstationary = true;
  sp.num_phases = 3;
  sp.phase_length = 20;
  const auto model = make_scenario(t, "srlg", sp);
  ASSERT_EQ(model.phase_group_q.size(), 3u);
  EXPECT_EQ(model.phase_length, 20u);
  ASSERT_FALSE(model.groups.empty());
  EXPECT_NE(model.phase_group_q[0], model.phase_group_q[1]);
}

TEST(CorrelatedScenarioTest, GilbertBuildsValidChains) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, "gilbert", sp);
  ASSERT_FALSE(model.chains.empty());
  EXPECT_GT(model.congestable_links.count(), 0u);
  for (const gilbert_chain& c : model.chains) {
    EXPECT_LT(c.driver, t.num_router_links());
    EXPECT_DOUBLE_EQ(c.p_exit_bad, 1.0 / 8.0);    // default burst.
    EXPECT_DOUBLE_EQ(c.p_enter_bad, 1.0 / 72.0);  // default gap.
    EXPECT_GE(c.q_bad, 0.0);
    EXPECT_LE(c.q_bad, 1.0);
    EXPECT_DOUBLE_EQ(c.q_good, 0.0);
  }

  const auto fast = make_scenario(t, "gilbert,burst=2,gap=4,q_good=0.1", sp);
  ASSERT_FALSE(fast.chains.empty());
  EXPECT_DOUBLE_EQ(fast.chains[0].p_exit_bad, 0.5);
  EXPECT_DOUBLE_EQ(fast.chains[0].p_enter_bad, 0.25);
  EXPECT_DOUBLE_EQ(fast.chains[0].q_good, 0.1);

  EXPECT_THROW((void)make_scenario(t, "gilbert,burst=0.5", sp), spec_error);
  EXPECT_THROW((void)make_scenario(t, "gilbert,q_good=2", sp), spec_error);
  EXPECT_THROW((void)make_scenario(t, "gilbert,nonstationary", sp),
               spec_error);  // chains are not phase-driven.

  // A batch-wide nonstationary default is cleared, not honored: the
  // chains carry the time structure, so no phases are ever pre-drawn.
  scenario_params defaults;
  defaults.nonstationary = true;
  EXPECT_FALSE(apply_scenario_spec("gilbert", defaults).nonstationary);

  // And layering no_stationarity on gilbert fails loudly instead of
  // silently reporting stationary results under the layered label.
  scenario_params layered;
  layered.seed = 3;
  layered.num_phases = 3;
  EXPECT_THROW((void)make_scenario(t, "no_stationarity,base=gilbert", layered),
               spec_error);
}

TEST(CorrelatedScenarioTest, HotspotDriftMovesAcrossPhases) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  sp.num_phases = 6;
  sp.phase_length = 10;
  // configure() forces nonstationarity — the drift IS the phase change.
  const scenario_params configured = apply_scenario_spec("hotspot_drift", sp);
  EXPECT_TRUE(configured.nonstationary);

  sp.nonstationary = true;
  const auto model = make_scenario(t, "hotspot_drift", sp);
  ASSERT_EQ(model.num_phases(), 6u);
  EXPECT_EQ(model.phase_length, 10u);
  EXPECT_GT(model.congestable_links.count(), 0u);

  // The hot-spot walks: some phase pair must drive different routers.
  bool drivers_move = false;
  for (std::size_t k = 1; k < model.num_phases() && !drivers_move; ++k) {
    for (std::size_t r = 0; r < model.phase_q[k].size(); ++r) {
      if ((model.phase_q[0][r] > 0.0) != (model.phase_q[k][r] > 0.0)) {
        drivers_move = true;
        break;
      }
    }
  }
  EXPECT_TRUE(drivers_move);
}

TEST(CorrelatedScenarioTest, NewScenariosAreDeterministicInSeed) {
  const topology t = test_topology();
  for (const char* name : {"srlg", "gilbert", "hotspot_drift"}) {
    scenario_params sp;
    sp.seed = 21;
    sp.num_phases = 4;
    const auto a = make_scenario(t, name, sp);
    const auto b = make_scenario(t, name, sp);
    EXPECT_EQ(a.phase_q, b.phase_q) << name;
    EXPECT_EQ(a.phase_group_q, b.phase_group_q) << name;
    EXPECT_EQ(a.congestable_links, b.congestable_links) << name;
    ASSERT_EQ(a.groups.size(), b.groups.size()) << name;
    for (std::size_t g = 0; g < a.groups.size(); ++g) {
      EXPECT_EQ(a.groups[g].members, b.groups[g].members) << name;
    }
    ASSERT_EQ(a.chains.size(), b.chains.size()) << name;
    for (std::size_t c = 0; c < a.chains.size(); ++c) {
      EXPECT_EQ(a.chains[c].driver, b.chains[c].driver) << name;
      EXPECT_EQ(a.chains[c].q_bad, b.chains[c].q_bad) << name;
      EXPECT_EQ(a.chains[c].start_bad, b.chains[c].start_bad) << name;
    }
  }
}

TEST(CorrelatedScenarioTest, AnalyticTruthMatchesSampledFrequencies) {
  const topology t = test_topology();
  for (const char* name : {"srlg", "gilbert", "hotspot_drift"}) {
    scenario_params sp;
    sp.seed = 9;
    sp.nonstationary = true;  // ignored where not applicable.
    sp.phase_length = 50;
    sp.num_phases = 100;
    const auto model = make_scenario(t, name, sp);

    const std::size_t T = 5000;  // = num_phases * phase_length.
    const ground_truth truth(t, model, T);
    std::vector<std::size_t> counts(t.num_links(), 0);
    link_state_sampler sampler(t, model, 17);
    for (std::size_t i = 0; i < T; ++i) {
      sampler.sample_interval(i).for_each(
          [&](std::size_t e) { ++counts[e]; });
    }
    model.congestable_links.for_each([&](std::size_t le) {
      const auto e = static_cast<link_id>(le);
      const double freq = static_cast<double>(counts[e]) / T;
      EXPECT_NEAR(freq, truth.link_congestion_probability(e), 0.06)
          << name << " link " << e;
    });
  }
}

TEST(ScenarioTest, NamesAreHuman) {
  EXPECT_EQ(scenario_label("random_congestion"), "Random Congestion");
  EXPECT_EQ(scenario_label("concentrated_congestion"),
            "Concentrated Congestion");
  EXPECT_EQ(scenario_label("no_independence"), "No Independence");
  EXPECT_EQ(scenario_label("no_stationarity"), "No Stationarity");
  EXPECT_EQ(scenario_label("srlg"), "Shared-Risk Groups");
  EXPECT_EQ(scenario_label("gilbert"), "Gilbert Bursts");
  EXPECT_EQ(scenario_label("hotspot_drift"), "Hotspot Drift");
  EXPECT_EQ(scenario_label("random_congestion,label=Custom"), "Custom");
}

TEST(ScenarioTest, AliasesResolve) {
  for (const char* alias : {"random", "concentrated", "noindep", "nostat",
                            "shared_risk", "gilbert_elliott", "bursty",
                            "hotspot"}) {
    EXPECT_TRUE(scenario_registry().contains(alias)) << alias;
  }
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 5;
  const auto by_alias = make_scenario(t, "noindep", sp);
  const auto by_name = make_scenario(t, "no_independence", sp);
  EXPECT_EQ(by_alias.phase_q, by_name.phase_q);
}

TEST(ScenarioTest, UnknownScenarioAndOptionThrow) {
  const topology t = test_topology();
  scenario_params sp;
  EXPECT_THROW((void)make_scenario(t, "rush_hour", sp), spec_error);
  EXPECT_THROW((void)make_scenario(t, "random_congestion,strength=9", sp),
               spec_error);
  EXPECT_THROW((void)make_scenario(t, "random_congestion,phase_length=0", sp),
               spec_error);
  EXPECT_THROW((void)make_scenario(t, "no_stationarity,base=no_stationarity", sp),
               spec_error);
}

TEST(ScenarioTest, ProbabilitiesAreValid) {
  const topology t = test_topology();
  for (const char* name : {"random_congestion", "concentrated_congestion",
                           "no_independence", "no_stationarity"}) {
    scenario_params sp;
    sp.seed = 11;
    const auto model = make_scenario(t, name, sp);
    for (const auto& phase : model.phase_q) {
      for (const double q : phase) {
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace ntom
