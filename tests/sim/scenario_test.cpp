#include "ntom/sim/scenario.hpp"

#include <gtest/gtest.h>

#include "ntom/topogen/brite.hpp"

namespace ntom {
namespace {

topology test_topology() {
  topogen::brite_params p;
  p.seed = 17;
  return topogen::generate_brite(p);
}

TEST(ScenarioTest, RandomCongestionTargetsRoughlyTenPercent) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, scenario_kind::random_congestion, sp);
  const double covered = static_cast<double>(t.covered_links().count());
  const double congestable = static_cast<double>(model.congestable_links.count());
  // Driver sharing can pull in a few extra links; stay in a loose band.
  EXPECT_GT(congestable, 0.05 * covered);
  EXPECT_LT(congestable, 0.30 * covered);
}

TEST(ScenarioTest, StationaryModelsHaveOnePhase) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, scenario_kind::random_congestion, sp);
  EXPECT_EQ(model.num_phases(), 1u);
}

TEST(ScenarioTest, ConcentratedPicksEdgeLinks) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model =
      make_scenario(t, scenario_kind::concentrated_congestion, sp);
  // Every directly-driven link must be an edge link; links dragged in
  // via shared router links may not be, so check the drivers' targets:
  // at least 80% of congestable links are edge links.
  std::size_t edge = 0;
  model.congestable_links.for_each([&](std::size_t e) {
    if (t.link(static_cast<link_id>(e)).edge) ++edge;
  });
  EXPECT_GE(edge * 5, model.congestable_links.count() * 4);
}

TEST(ScenarioTest, NoIndependenceEveryLinkHasPartner) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  const auto model = make_scenario(t, scenario_kind::no_independence, sp);
  ASSERT_GE(model.congestable_links.count(), 2u);

  // Every congestable link shares a driver router link with another
  // congestable link (the defining property of the scenario).
  const auto& q = model.phase_q[0];
  model.congestable_links.for_each([&](std::size_t le) {
    const auto e = static_cast<link_id>(le);
    bool has_partner = false;
    for (const router_link_id r : t.link(e).router_links) {
      if (q[r] <= 0.0) continue;
      for (const link_id other : t.links_on_router_link(r)) {
        if (other != e) has_partner = true;
      }
    }
    EXPECT_TRUE(has_partner) << "link " << e << " has no correlated partner";
  });
}

TEST(ScenarioTest, NonStationaryDrawsDistinctPhases) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 3;
  sp.nonstationary = true;
  sp.num_phases = 4;
  sp.phase_length = 25;
  const auto model = make_scenario(t, scenario_kind::random_congestion, sp);
  EXPECT_EQ(model.num_phases(), 4u);
  EXPECT_EQ(model.phase_length, 25u);

  // Same driver set across phases, different values.
  bool any_differ = false;
  for (std::size_t r = 0; r < model.phase_q[0].size(); ++r) {
    EXPECT_EQ(model.phase_q[0][r] > 0.0, model.phase_q[1][r] > 0.0)
        << "driver set must not change across phases";
    if (model.phase_q[0][r] != model.phase_q[1][r]) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(ScenarioTest, DeterministicInSeed) {
  const topology t = test_topology();
  scenario_params sp;
  sp.seed = 5;
  const auto a = make_scenario(t, scenario_kind::no_independence, sp);
  const auto b = make_scenario(t, scenario_kind::no_independence, sp);
  EXPECT_EQ(a.phase_q, b.phase_q);
  EXPECT_EQ(a.congestable_links, b.congestable_links);
}

TEST(ScenarioTest, NamesAreHuman) {
  EXPECT_STREQ(scenario_name(scenario_kind::random_congestion),
               "Random Congestion");
  EXPECT_STREQ(scenario_name(scenario_kind::concentrated_congestion),
               "Concentrated Congestion");
  EXPECT_STREQ(scenario_name(scenario_kind::no_independence),
               "No Independence");
}

TEST(ScenarioTest, ProbabilitiesAreValid) {
  const topology t = test_topology();
  for (const auto kind :
       {scenario_kind::random_congestion, scenario_kind::concentrated_congestion,
        scenario_kind::no_independence}) {
    scenario_params sp;
    sp.seed = 11;
    const auto model = make_scenario(t, kind, sp);
    for (const auto& phase : model.phase_q) {
      for (const double q : phase) {
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace ntom
