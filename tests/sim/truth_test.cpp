#include "ntom/sim/truth.hpp"

#include <gtest/gtest.h>

#include "ntom/sim/packet_sim.hpp"
#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using namespace topogen;

TEST(GroundTruthTest, SingleLinkProbability) {
  const topology t = make_toy(toy_case::case1);
  congestion_model m;
  m.phase_q.assign(1, std::vector<double>(t.num_router_links(), 0.0));
  m.phase_q[0][0] = 0.3;  // e1's private router link.
  const ground_truth truth(t, m, 100);
  EXPECT_NEAR(truth.link_congestion_probability(toy_e1), 0.3, 1e-12);
  EXPECT_NEAR(truth.link_congestion_probability(toy_e2), 0.0, 1e-12);
}

TEST(GroundTruthTest, SharedRouterLinkCountedOnce) {
  const topology t = make_toy(toy_case::case1);
  congestion_model m;
  m.phase_q.assign(1, std::vector<double>(t.num_router_links(), 0.0));
  m.phase_q[0][4] = 0.2;  // shared by e2 and e3.
  const ground_truth truth(t, m, 100);

  bitvec pair(t.num_links());
  pair.set(toy_e2);
  pair.set(toy_e3);
  // Perfect correlation: P(both good) = 0.8, not 0.64.
  EXPECT_NEAR(truth.good_probability(pair), 0.8, 1e-12);
  // P(both congested) = 0.2, not 0.04.
  EXPECT_NEAR(truth.set_congestion_probability(pair), 0.2, 1e-12);
}

TEST(GroundTruthTest, MultipleRouterLinksCompose) {
  const topology t = make_toy(toy_case::case1);
  congestion_model m;
  m.phase_q.assign(1, std::vector<double>(t.num_router_links(), 0.0));
  m.phase_q[0][1] = 0.1;  // e2 private.
  m.phase_q[0][4] = 0.2;  // e2+e3 shared.
  const ground_truth truth(t, m, 100);
  // e2 congested iff private OR shared congested: 1 - 0.9*0.8.
  EXPECT_NEAR(truth.link_congestion_probability(toy_e2), 1.0 - 0.72, 1e-12);
  // e3 only via shared: 0.2.
  EXPECT_NEAR(truth.link_congestion_probability(toy_e3), 0.2, 1e-12);
}

TEST(GroundTruthTest, IndependentLinksFactorize) {
  const topology t = make_toy(toy_case::case1);
  congestion_model m;
  m.phase_q.assign(1, std::vector<double>(t.num_router_links(), 0.0));
  m.phase_q[0][0] = 0.3;  // e1.
  m.phase_q[0][3] = 0.5;  // e4.
  const ground_truth truth(t, m, 100);
  bitvec pair(t.num_links());
  pair.set(toy_e1);
  pair.set(toy_e4);
  EXPECT_NEAR(truth.good_probability(pair), 0.7 * 0.5, 1e-12);
  EXPECT_NEAR(truth.set_congestion_probability(pair), 0.3 * 0.5, 1e-12);
}

TEST(GroundTruthTest, PhaseMixture) {
  const topology t = make_toy(toy_case::case1);
  congestion_model m;
  m.phase_q.assign(2, std::vector<double>(t.num_router_links(), 0.0));
  m.phase_q[0][0] = 0.1;
  m.phase_q[1][0] = 0.5;
  m.phase_length = 50;
  // T = 100: phases weighted 50/50.
  const ground_truth truth(t, m, 100);
  EXPECT_NEAR(truth.link_congestion_probability(toy_e1), 0.3, 1e-12);
  // T = 75: weights 50/25 -> (0.1*2 + 0.5)/3.
  const ground_truth truth75(t, m, 75);
  EXPECT_NEAR(truth75.link_congestion_probability(toy_e1),
              (0.1 * 50 + 0.5 * 25) / 75.0, 1e-12);
}

TEST(GroundTruthTest, LastPhaseAbsorbsRemainder) {
  const topology t = make_toy(toy_case::case1);
  congestion_model m;
  m.phase_q.assign(2, std::vector<double>(t.num_router_links(), 0.0));
  m.phase_q[0][0] = 0.0;
  m.phase_q[1][0] = 1.0;
  m.phase_length = 10;
  // T = 100: phase 0 covers 10 intervals, phase 1 covers 90.
  const ground_truth truth(t, m, 100);
  EXPECT_NEAR(truth.link_congestion_probability(toy_e1), 0.9, 1e-12);
}

TEST(GroundTruthTest, EmpiricalFrequenciesConverge) {
  // The simulator must agree with the analytic truth (law of large
  // numbers; oracle monitoring isolates the congestion process).
  const topology t = make_toy(toy_case::case2);
  congestion_model m;
  m.phase_q.assign(1, std::vector<double>(t.num_router_links(), 0.0));
  m.phase_q[0][4] = 0.25;  // e2,e3 shared.
  m.phase_q[0][5] = 0.4;   // e1,e4 shared.
  m.congestable_links = bitvec(t.num_links());
  const ground_truth truth(t, m, 0);

  sim_params sim;
  sim.intervals = 20000;
  sim.oracle_monitor = true;
  const auto data = run_experiment(t, m, sim);

  std::vector<std::size_t> count(t.num_links(), 0);
  std::size_t joint23 = 0;
  for (std::size_t i = 0; i < data.intervals; ++i) {
    for (link_id e = 0; e < t.num_links(); ++e) {
      count[e] += data.true_links.test(i, e);
    }
    joint23 += data.true_links.test(i, toy_e2) && data.true_links.test(i, toy_e3);
  }
  for (link_id e = 0; e < t.num_links(); ++e) {
    EXPECT_NEAR(static_cast<double>(count[e]) / data.intervals,
                truth.link_congestion_probability(e), 0.02)
        << "link " << e;
  }
  bitvec pair(t.num_links());
  pair.set(toy_e2);
  pair.set(toy_e3);
  EXPECT_NEAR(static_cast<double>(joint23) / data.intervals,
              truth.set_congestion_probability(pair), 0.02);
}

}  // namespace
}  // namespace ntom
