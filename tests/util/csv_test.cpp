#include "ntom/util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ntom {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CsvEscapeTest, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscapeTest, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlineTriggersQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, WritesRowsAndHeader) {
  const std::string path = ::testing::TempDir() + "/ntom_csv_test.csv";
  {
    csv_writer w(path);
    w.write_header({"name", "x", "y"});
    w.write_row({"plain", "1", "2"});
    w.write_row("labeled", {0.5, 1.25});
  }
  const std::string content = read_file(path);
  EXPECT_EQ(content, "name,x,y\nplain,1,2\nlabeled,0.5,1.25\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(csv_writer("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace ntom
