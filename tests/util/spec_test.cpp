#include "ntom/util/spec.hpp"

#include <gtest/gtest.h>

namespace ntom {
namespace {

TEST(SpecTest, ParsesNameOnly) {
  const spec s = spec::parse("brite");
  EXPECT_EQ(s.name(), "brite");
  EXPECT_TRUE(s.options().empty());
  EXPECT_EQ(s.to_string(), "brite");
}

TEST(SpecTest, ParsesKeyValueOptions) {
  const spec s = spec::parse("brite,n=200,paths=1500");
  EXPECT_EQ(s.name(), "brite");
  ASSERT_EQ(s.options().size(), 2u);
  EXPECT_EQ(s.options()[0].key, "n");
  EXPECT_EQ(s.options()[0].value, "200");
  EXPECT_EQ(s.get_int("n", 0), 200);
  EXPECT_EQ(s.get_int("paths", 0), 1500);
  EXPECT_EQ(s.get_int("absent", 7), 7);
}

TEST(SpecTest, BareKeyIsBooleanFlag) {
  const spec s = spec::parse("no_independence,nonstationary");
  EXPECT_TRUE(s.has("nonstationary"));
  EXPECT_TRUE(s.get_bool("nonstationary", false));
  EXPECT_FALSE(s.get_bool("other", false));
}

TEST(SpecTest, TrimsWhitespace) {
  const spec s = spec::parse("  brite , n = 12 ,  flag  ");
  EXPECT_EQ(s.name(), "brite");
  EXPECT_EQ(s.get_int("n", 0), 12);
  EXPECT_TRUE(s.get_bool("flag", false));
}

TEST(SpecTest, TypedGetters) {
  const spec s = spec::parse("x,f=0.25,i=-3,b=off,s=paper");
  EXPECT_DOUBLE_EQ(s.get_double("f", 0.0), 0.25);
  EXPECT_EQ(s.get_int("i", 0), -3);
  EXPECT_FALSE(s.get_bool("b", true));
  EXPECT_EQ(s.get_string("s"), "paper");
  // Ints parse as doubles too.
  EXPECT_DOUBLE_EQ(s.get_double("i", 0.0), -3.0);
}

TEST(SpecTest, BoolSpellings) {
  EXPECT_TRUE(spec::parse("x,k=YES").get_bool("k", false));
  EXPECT_TRUE(spec::parse("x,k=1").get_bool("k", false));
  EXPECT_TRUE(spec::parse("x,k=on").get_bool("k", false));
  EXPECT_FALSE(spec::parse("x,k=0").get_bool("k", true));
  EXPECT_FALSE(spec::parse("x,k=No").get_bool("k", true));
}

TEST(SpecTest, GetSizeRejectsNegatives) {
  const spec s = spec::parse("x,n=12,bad=-3");
  EXPECT_EQ(s.get_size("n", 0), 12u);
  EXPECT_EQ(s.get_size("absent", 9), 9u);
  EXPECT_THROW((void)s.get_size("bad", 0), spec_error);
}

TEST(SpecTest, MalformedValuesThrow) {
  EXPECT_THROW((void)spec::parse("x,k=abc").get_int("k", 0), spec_error);
  EXPECT_THROW((void)spec::parse("x,k=12x").get_int("k", 0), spec_error);
  EXPECT_THROW((void)spec::parse("x,k=abc").get_double("k", 0.0), spec_error);
  EXPECT_THROW((void)spec::parse("x,k=maybe").get_bool("k", false), spec_error);
}

TEST(SpecTest, MalformedSpecsThrow) {
  EXPECT_THROW((void)spec::parse(""), spec_error);
  EXPECT_THROW((void)spec::parse("   "), spec_error);
  EXPECT_THROW((void)spec::parse("k=v"), spec_error);       // option first.
  EXPECT_THROW((void)spec::parse("x,,y"), spec_error);      // empty segment.
  EXPECT_THROW((void)spec::parse("x,"), spec_error);        // stray comma.
  EXPECT_THROW((void)spec::parse("x,=v"), spec_error);      // empty key.
  EXPECT_THROW((void)spec::parse("x,k=1,k=2"), spec_error); // duplicate.
}

TEST(SpecTest, ValueMayContainEquals) {
  // Split happens on the first '='; the rest stays in the value.
  const spec s = spec::parse("x,expr=a=b");
  EXPECT_EQ(s.get_string("expr"), "a=b");
}

TEST(SpecTest, RoundTripsThroughToString) {
  for (const char* text :
       {"brite", "brite,n=200", "no_independence,nonstationary",
        "sparse,keep=0.5,paths=300"}) {
    const spec s = spec::parse(text);
    EXPECT_EQ(spec::parse(s.to_string()), s) << text;
  }
}

TEST(SpecTest, WithOptionAddsOrReplaces) {
  const spec s = spec::parse("brite,n=10");
  const spec added = s.with_option("scale", "paper");
  EXPECT_EQ(added.get_string("scale"), "paper");
  EXPECT_EQ(added.get_int("n", 0), 10);
  const spec replaced = added.with_option("n", "40");
  EXPECT_EQ(replaced.get_int("n", 0), 40);
  ASSERT_EQ(replaced.options().size(), 2u);
  // Original untouched.
  EXPECT_EQ(s.get_int("n", 0), 10);
  EXPECT_FALSE(s.has("scale"));
}

TEST(SpecTest, QuotedValuesProtectSeparators) {
  const spec s = spec::parse("trace,file='runs/a,b.trc',chunk=7");
  EXPECT_EQ(s.name(), "trace");
  EXPECT_EQ(s.get_string("file"), "runs/a,b.trc");
  EXPECT_EQ(s.get_int("chunk", 0), 7);

  // Equals signs inside quotes stay in the value.
  EXPECT_EQ(spec::parse("x,k='a=b,c=d'").get_string("k"), "a=b,c=d");
  // Quoted whitespace is preserved; unquoted whitespace still trims.
  EXPECT_EQ(spec::parse("x, k = ' a b ' ").get_string("k"), " a b ");
  // Escaped quote: '' inside quotes is one literal quote.
  EXPECT_EQ(spec::parse("x,k='it''s'").get_string("k"), "it's");
  // Explicitly empty value.
  EXPECT_EQ(spec::parse("x,k=''").get_string("k", "fallback"), "");
  EXPECT_TRUE(spec::parse("x,k=''").has("k"));
}

TEST(SpecTest, QuotedValuesNest) {
  // A quoted value can carry a whole nested spec list — the trace
  // scenario's imperfect option.
  const spec s =
      spec::parse("trace,file=a.trc,imperfect='drop,p=0.05;subsample,stride=2'");
  EXPECT_EQ(s.get_string("imperfect"), "drop,p=0.05;subsample,stride=2");
  const spec nested = spec::parse("drop,p=0.05");
  EXPECT_DOUBLE_EQ(nested.get_double("p", 0.0), 0.05);
}

TEST(SpecTest, UnterminatedQuoteThrows) {
  EXPECT_THROW((void)spec::parse("trace,file='runs/a.trc"), spec_error);
  EXPECT_THROW((void)spec::parse("x,k='"), spec_error);
  EXPECT_THROW((void)spec::parse("x,k='a''"), spec_error);  // '' escapes.
}

TEST(SpecTest, QuotedValuesRoundTripThroughToString) {
  for (const char* text :
       {"trace,file='runs/a,b.trc'", "x,k='a=b'", "x,k='it''s'", "x,k=''",
        "x,k=' padded '"}) {
    const spec s = spec::parse(text);
    EXPECT_EQ(spec::parse(s.to_string()), s) << text << " via "
                                             << s.to_string();
  }
  // with_option values containing separators re-quote on print.
  const spec built = spec::parse("trace").with_option("file", "a,b.trc");
  EXPECT_EQ(built.to_string(), "trace,file='a,b.trc'");
  EXPECT_EQ(spec::parse(built.to_string()), built);
}

/// Parses `text`, expecting failure, and returns the caught error so
/// position assertions can inspect offset()/token().
spec_error catch_parse_error(std::string_view text) {
  try {
    (void)spec::parse(text);
  } catch (const spec_error& err) {
    return err;
  }
  ADD_FAILURE() << "expected spec_error parsing '" << text << "'";
  return spec_error("no error");
}

TEST(SpecErrorPositionTest, UnterminatedQuoteReportsTheQuote) {
  // The opening quote of file= sits at byte 11.
  const spec_error err = catch_parse_error("trace,file='runs/a.trc");
  EXPECT_EQ(err.offset(), 11u);
  EXPECT_EQ(err.token(), "'");
  EXPECT_NE(std::string(err.what()).find("byte 11"), std::string::npos);
  EXPECT_NE(std::string(err.what()).find("unterminated quote"),
            std::string::npos);
}

TEST(SpecErrorPositionTest, QuotedValuePositionsSkipQuotedSeparators) {
  // The quoted value hides a comma and an equals sign; the duplicate
  // key after it must still be located correctly in source bytes.
  //                      0123456789012345678901234
  const std::string text = "trace,file='a,b=c.trc',file=x";
  const spec_error err = catch_parse_error(text);
  EXPECT_EQ(err.token(), "file");
  EXPECT_EQ(err.offset(), text.rfind("file"));
  EXPECT_NE(std::string(err.what()).find("duplicate option"),
            std::string::npos);
}

TEST(SpecErrorPositionTest, StrayCommaAndEmptyKeyPointAtTheSegment) {
  const spec_error stray = catch_parse_error("x,,y");
  EXPECT_EQ(stray.offset(), 2u);
  EXPECT_EQ(stray.token(), ",");

  const spec_error trailing = catch_parse_error("x,k=1,");
  EXPECT_EQ(trailing.offset(), 6u);

  const spec_error empty_key = catch_parse_error("x,  =v");
  EXPECT_EQ(empty_key.offset(), 4u);  // first kept char: the '='.

  const spec_error option_first = catch_parse_error("k=v,x");
  EXPECT_EQ(option_first.offset(), 1u);  // the offending '='.
  EXPECT_EQ(option_first.token(), "k=v");
}

TEST(SpecErrorPositionTest, NestedSpecErrorsAreRelativeToTheNestedText) {
  // A quoted value carrying a whole nested spec is parsed by whoever
  // consumes the option; a parse error there reports offsets within
  // the nested text, which the caller can rebase into the outer spec.
  const spec outer = spec::parse("trace,file=x.trc,imperfect='drop,,q=1'");
  const std::string nested = outer.get_string("imperfect", "");
  ASSERT_EQ(nested, "drop,,q=1");

  const spec_error err = catch_parse_error(nested);
  EXPECT_EQ(err.offset(), 5u);  // the stray comma inside the nested spec.
  EXPECT_EQ(err.token(), ",");
}

TEST(SpecErrorPositionTest, NestedSpecDuplicatePosition) {
  const spec outer =
      spec::parse("trace,file=x.trc,imperfect='drop,p=1,p=2'");
  const std::string nested = outer.get_string("imperfect", "");
  ASSERT_EQ(nested, "drop,p=1,p=2");
  const spec_error err = catch_parse_error(nested);
  EXPECT_EQ(err.token(), "p");
  EXPECT_EQ(err.offset(), nested.rfind("p="));
  EXPECT_NE(std::string(err.what()).find("duplicate option"),
            std::string::npos);
}

TEST(SpecErrorPositionTest, SemanticErrorsCarryNoPosition) {
  const spec s = spec::parse("x,k=abc");
  try {
    (void)s.get_int("k", 0);
    ADD_FAILURE() << "expected spec_error";
  } catch (const spec_error& err) {
    EXPECT_EQ(err.offset(), spec_error::npos);
    EXPECT_TRUE(err.token().empty());
  }
}

TEST(SpecTest, ImplicitConversionFromStrings) {
  const spec from_literal = "toy,case=2";
  EXPECT_EQ(from_literal.name(), "toy");
  const std::string text = "toy,case=1";
  const spec from_string = text;
  EXPECT_EQ(from_string.get_int("case", 0), 1);
}

}  // namespace
}  // namespace ntom
