#include "ntom/util/registry.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>

namespace ntom {
namespace {

using string_factory = std::function<std::string(const spec&)>;
using string_registry = registry<string_factory>;

string_registry make_registry() {
  string_registry reg("widget");
  reg.add({"alpha",
           "Alpha",
           "the first widget",
           {"a"},
           {{"size", "widget size"}, {"color", "widget color"}},
           [](const spec& s) { return "alpha:" + s.get_string("size", "M"); }});
  reg.add({"beta",
           "Beta",
           "the second widget",
           {},
           {},
           [](const spec&) { return std::string("beta"); }});
  return reg;
}

TEST(RegistryTest, RegisterListMakeRoundTrip) {
  const string_registry reg = make_registry();
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_TRUE(reg.contains("alpha"));
  EXPECT_TRUE(reg.contains("beta"));
  EXPECT_FALSE(reg.contains("gamma"));

  const spec s = spec::parse("alpha,size=XL");
  const auto& entry = reg.resolve(s);
  EXPECT_EQ(entry.display, "Alpha");
  EXPECT_EQ(entry.factory(s), "alpha:XL");
}

TEST(RegistryTest, AliasResolvesToSameEntry) {
  const string_registry reg = make_registry();
  EXPECT_TRUE(reg.contains("a"));
  EXPECT_EQ(&reg.at("a"), &reg.at("alpha"));
}

TEST(RegistryTest, UnknownNameListsCandidates) {
  const string_registry reg = make_registry();
  try {
    (void)reg.at("gamma");
    FAIL() << "expected spec_error";
  } catch (const spec_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown widget 'gamma'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("alpha"), std::string::npos) << message;
    EXPECT_NE(message.find("beta"), std::string::npos) << message;
  }
}

TEST(RegistryTest, ResolveRejectsUndocumentedOptions) {
  const string_registry reg = make_registry();
  try {
    (void)reg.resolve(spec::parse("alpha,weight=3"));
    FAIL() << "expected spec_error";
  } catch (const spec_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown option 'weight'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("size"), std::string::npos) << message;
  }
  // An entry with no documented options rejects any option.
  EXPECT_THROW((void)reg.resolve(spec::parse("beta,size=1")), spec_error);
}

TEST(RegistryTest, LabelOptionAlwaysAccepted) {
  const string_registry reg = make_registry();
  EXPECT_NO_THROW((void)reg.resolve(spec::parse("beta,label=Mine")));
  EXPECT_NO_THROW((void)reg.resolve(spec::parse("alpha,label=X,size=S")));
}

TEST(RegistryTest, DuplicateRegistrationThrows) {
  string_registry reg = make_registry();
  EXPECT_THROW(reg.add({"alpha", "", "", {}, {}, {}}), spec_error);
  // Alias collisions count too — in both directions.
  EXPECT_THROW(reg.add({"a", "", "", {}, {}, {}}), spec_error);
  EXPECT_THROW(reg.add({"gamma", "", "", {"beta"}, {}, {}}), spec_error);
}

TEST(RegistryTest, DescribeListsNamesAliasesAndOptions) {
  const string_registry reg = make_registry();
  const std::string text = reg.describe();
  EXPECT_NE(text.find("alpha (a)"), std::string::npos) << text;
  EXPECT_NE(text.find("the first widget"), std::string::npos);
  EXPECT_NE(text.find("size: widget size"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
}

TEST(RegistryTest, DescribeJsonEmitsMachineReadableEntries) {
  const string_registry reg = make_registry();
  const std::string json = reg.describe_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("{\"name\": \"alpha\", \"display\": \"Alpha\", "
                      "\"doc\": \"the first widget\", \"aliases\": [\"a\"]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"key\": \"size\", \"doc\": \"widget size\"}"),
            std::string::npos);
  // Entries without aliases or options still carry the empty arrays.
  EXPECT_NE(json.find("{\"name\": \"beta\", \"display\": \"Beta\", "
                      "\"doc\": \"the second widget\", \"aliases\": [], "
                      "\"options\": []}"),
            std::string::npos)
      << json;
}

TEST(RegistryTest, DescribeJsonByNameResolvesAliases) {
  const string_registry reg = make_registry();
  EXPECT_EQ(reg.describe_json("a"), reg.describe_json("alpha"));
  EXPECT_EQ(reg.describe_json("beta").front(), '{');
  EXPECT_THROW((void)reg.describe_json("gamma"), spec_error);
}

TEST(RegistryTest, DescribeJsonEscapesSpecialCharacters) {
  string_registry reg("widget");
  reg.add({"quoted",
           "Quo\"ted",
           "line1\nline2\t\"x\\y\"",
           {},
           {},
           [](const spec&) { return std::string(); }});
  const std::string json = reg.describe_json("quoted");
  EXPECT_NE(json.find("\"display\": \"Quo\\\"ted\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("line1\\nline2\\t\\\"x\\\\y\\\""), std::string::npos)
      << json;
}

}  // namespace
}  // namespace ntom
