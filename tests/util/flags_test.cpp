#include "ntom/util/flags.hpp"

#include <gtest/gtest.h>

namespace ntom {
namespace {

flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  const auto f = make({"--scale=paper", "--seed=99"});
  EXPECT_EQ(f.get_string("scale", "small"), "paper");
  EXPECT_EQ(f.get_int("seed", 0), 99);
}

TEST(FlagsTest, SpaceSyntax) {
  const auto f = make({"--seed", "17"});
  EXPECT_EQ(f.get_int("seed", 0), 17);
}

TEST(FlagsTest, BareFlagIsTrue) {
  const auto f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_TRUE(f.has("verbose"));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const auto f = make({});
  EXPECT_EQ(f.get_string("scale", "small"), "small");
  EXPECT_EQ(f.get_int("seed", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("frac", 0.1), 0.1);
  EXPECT_FALSE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.has("anything"));
}

TEST(FlagsTest, DoubleParsing) {
  const auto f = make({"--frac=0.25"});
  EXPECT_DOUBLE_EQ(f.get_double("frac", 0.0), 0.25);
}

TEST(FlagsTest, BoolRecognizesSpellings) {
  EXPECT_TRUE(make({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=yes"}).get_bool("a", false));
  EXPECT_FALSE(make({"--a=false"}).get_bool("a", true));
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  const auto f = make({"input.txt", "--seed=1", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(FlagsTest, NamesListsSeenFlags) {
  const auto f = make({"--b=2", "--a=1"});
  const auto names = f.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // std::map orders keys.
  EXPECT_EQ(names[1], "b");
}

TEST(FlagsTest, BareFlagFollowedByFlag) {
  const auto f = make({"--verbose", "--seed=3"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_EQ(f.get_int("seed", 0), 3);
}

}  // namespace
}  // namespace ntom
