#include "ntom/util/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ntom {
namespace {

TEST(Crc32Test, MatchesKnownVectors) {
  // The classic IEEE CRC-32 check values.
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  const std::string check = "123456789";
  EXPECT_EQ(crc32(check.data(), check.size()), 0xCBF43926u);
  const std::string fox = "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(crc32(fox.data(), fox.size()), 0x414FA339u);
}

TEST(Crc32Test, AccumulatorMatchesOneShot) {
  const std::string data = "chunked payloads checksum identically";
  crc32_accumulator acc;
  acc.update(data.data(), 10);
  acc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(acc.value(), crc32(data.data(), data.size()));
  acc.reset();
  EXPECT_EQ(acc.value(), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data(256, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 7);
  }
  const std::uint32_t clean = crc32(data.data(), data.size());
  for (const std::size_t pos : {0ul, 100ul, 255ul}) {
    std::string corrupted = data;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x01);
    EXPECT_NE(crc32(corrupted.data(), corrupted.size()), clean) << pos;
  }
}

}  // namespace
}  // namespace ntom
