#include "ntom/util/crc32.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ntom/util/simd/simd.hpp"

namespace ntom {
namespace {

TEST(Crc32Test, MatchesKnownVectors) {
  // The classic IEEE CRC-32 check values.
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  const std::string check = "123456789";
  EXPECT_EQ(crc32(check.data(), check.size()), 0xCBF43926u);
  const std::string fox = "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(crc32(fox.data(), fox.size()), 0x414FA339u);
}

TEST(Crc32Test, AccumulatorMatchesOneShot) {
  const std::string data = "chunked payloads checksum identically";
  crc32_accumulator acc;
  acc.update(data.data(), 10);
  acc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(acc.value(), crc32(data.data(), data.size()));
  acc.reset();
  EXPECT_EQ(acc.value(), 0u);
}

TEST(Crc32Test, MatchesKnownVectorsAboveFoldThreshold) {
  // Inputs >= 64 bytes exercise the CLMUL folding core (when the host
  // has one); expected values computed independently with zlib.
  std::vector<unsigned char> ramp(256);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<unsigned char>(i);
  }
  EXPECT_EQ(crc32(ramp.data(), ramp.size()), 0x29058C73u);
  std::vector<unsigned char> mod(200);
  for (std::size_t i = 0; i < mod.size(); ++i) {
    mod[i] = static_cast<unsigned char>(i * 7 % 251);
  }
  EXPECT_EQ(crc32(mod.data(), mod.size()), 0xE63AA7B4u);
}

TEST(Crc32Test, DispatchedMatchesScalarOnRaggedSizes) {
  // The folded bulk path and the slicing-by-8 reference must agree on
  // every length, including the ragged tails around the 64-byte fold
  // granularity.
  const simd::level before = simd::active_level();
  std::vector<unsigned char> data(4133);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<unsigned char>(i * 131 + 7);
  }
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                              std::size_t{64}, std::size_t{65},
                              std::size_t{127}, std::size_t{128},
                              std::size_t{129}, std::size_t{300},
                              std::size_t{4096}, std::size_t{4133}}) {
    ASSERT_TRUE(simd::set_level(simd::level::scalar));
    const std::uint32_t ref = crc32(data.data(), n, 0x1234);
    for (const simd::level l : simd::available_levels()) {
      ASSERT_TRUE(simd::set_level(l));
      EXPECT_EQ(crc32(data.data(), n, 0x1234), ref)
          << "len=" << n << " level=" << simd::level_name(l);
    }
  }
  simd::set_level(before);
}

TEST(Crc32Test, AccumulatorSplitsAcrossFoldBoundary) {
  // Chunked updates that split mid-fold-block must checksum identically
  // to the one-shot call (the raw register threads through the seed).
  std::vector<unsigned char> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<unsigned char>(i ^ (i >> 3));
  }
  const std::uint32_t oneshot = crc32(data.data(), data.size());
  for (const std::size_t split : {std::size_t{1}, std::size_t{63},
                                  std::size_t{64}, std::size_t{65},
                                  std::size_t{500}, std::size_t{999}}) {
    crc32_accumulator acc;
    acc.update(data.data(), split);
    acc.update(data.data() + split, data.size() - split);
    EXPECT_EQ(acc.value(), oneshot) << "split=" << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data(256, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 7);
  }
  const std::uint32_t clean = crc32(data.data(), data.size());
  for (const std::size_t pos : {0ul, 100ul, 255ul}) {
    std::string corrupted = data;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x01);
    EXPECT_NE(crc32(corrupted.data(), corrupted.size()), clean) << pos;
  }
}

}  // namespace
}  // namespace ntom
