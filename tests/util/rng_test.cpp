#include "ntom/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ntom {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(0.25, 0.75);
    EXPECT_GE(x, 0.25);
    EXPECT_LT(x, 0.75);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIndexCoversRange) {
  rng r(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = r.uniform_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  rng r(13);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BinomialEdgeCases) {
  rng r(17);
  EXPECT_EQ(r.binomial(100, 0.0), 0u);
  EXPECT_EQ(r.binomial(100, 1.0), 100u);
  EXPECT_EQ(r.binomial(0, 0.5), 0u);
}

TEST(RngTest, BinomialMeanSmallN) {
  rng r(19);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(r.binomial(50, 0.2));
  EXPECT_NEAR(sum / trials, 10.0, 0.2);
}

TEST(RngTest, BinomialMeanLargeNUsesNormalApprox) {
  rng r(23);
  double sum = 0.0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    const auto x = r.binomial(10000, 0.4);
    EXPECT_LE(x, 10000u);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / trials, 4000.0, 15.0);
}

TEST(RngTest, NormalMoments) {
  rng r(29);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, SplitProducesIndependentStream) {
  rng a(31);
  rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ShufflePreservesElements) {
  rng r(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  r.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  rng r(41);
  const auto sample = r.sample_without_replacement(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto i : sample) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  rng r(43);
  const auto sample = r.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementClampsOversizedK) {
  rng r(47);
  const auto sample = r.sample_without_replacement(3, 10);
  EXPECT_EQ(sample.size(), 3u);
}

TEST(RngTest, SplitMix64KnownSequenceIsStable) {
  std::uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

}  // namespace
}  // namespace ntom
