#include "ntom/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ntom {
namespace {

TEST(ThreadPoolTest, ResolvesZeroToHardwareConcurrency) {
  EXPECT_GE(thread_pool::resolve_threads(0), 1u);
  EXPECT_EQ(thread_pool::resolve_threads(3), 3u);
}

TEST(ThreadPoolTest, ReportsRequestedSize) {
  thread_pool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  thread_pool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  thread_pool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i, &counter] {
      counter.fetch_add(1);
      return i;
    }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(counter.load(), 64);
  EXPECT_EQ(sum, 64 * 63 / 2);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFuture) {
  thread_pool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    thread_pool pool(1);
    for (int i = 0; i < 16; ++i) {
      // Futures intentionally dropped; destruction must still run all.
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 16);
}

}  // namespace
}  // namespace ntom
