// Every dispatch level must be bit-identical to the scalar reference —
// the correctness oracle of the SIMD kernel layer. The sweeps cover the
// ragged shapes the packed stores produce: empty, single-word,
// word-boundary +/- 1, multi-word with partial tails, and the
// Harley–Seal main-loop boundary (64 words per iteration on AVX2).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ntom/util/bit_matrix.hpp"
#include "ntom/util/bitvec.hpp"
#include "ntom/util/rng.hpp"
#include "ntom/util/simd/simd.hpp"

namespace {

using ntom::bit_matrix;
using ntom::bitvec;
using ntom::rng;
namespace simd = ntom::simd;

/// Restores the entry dispatch level on scope exit so a failing sweep
/// cannot poison later tests.
struct level_guard {
  simd::level saved = simd::active_level();
  ~level_guard() { simd::set_level(saved); }
};

/// Naive per-bit popcount, independent of every kernel under test.
std::size_t naive_popcount(const std::uint64_t* a, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t w = 0; w < n; ++w) {
    for (int b = 0; b < 64; ++b) total += (a[w] >> b) & 1u;
  }
  return total;
}

std::vector<std::uint64_t> random_words(std::size_t n, std::uint64_t seed) {
  rng r(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) w = r.next_u64();
  return out;
}

// Word counts covering 0, sub-vector tails, vector boundaries, and the
// 64-word Harley–Seal block boundary.
const std::size_t kWordSizes[] = {0,  1,  2,  3,  4,  5,   7,   8,  9,
                                  15, 16, 17, 31, 32, 63,  64,  65, 100,
                                  127, 128, 129, 313, 1024};

TEST(SimdKernel, LevelNamesRoundTrip) {
  for (const simd::level l : {simd::level::scalar, simd::level::popcnt,
                              simd::level::avx2, simd::level::avx512}) {
    simd::level parsed{};
    ASSERT_TRUE(simd::parse_level(simd::level_name(l), parsed));
    EXPECT_EQ(parsed, l);
  }
  simd::level parsed{};
  EXPECT_FALSE(simd::parse_level("sse9", parsed));
  EXPECT_FALSE(simd::parse_level("", parsed));
}

TEST(SimdKernel, AvailableLevelsAscendToDetected) {
  const auto levels = simd::available_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::level::scalar);
  EXPECT_EQ(levels.back(), simd::detected_level());
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
  }
  EXPECT_LE(static_cast<int>(simd::active_level()),
            static_cast<int>(simd::detected_level()));
}

TEST(SimdKernel, SetLevelRejectsAboveDetected) {
  level_guard guard;
  const auto detected = simd::detected_level();
  if (detected != simd::level::avx512) {
    EXPECT_FALSE(simd::set_level(simd::level::avx512));
    EXPECT_EQ(simd::active_level(), guard.saved);
  }
  ASSERT_TRUE(simd::set_level(simd::level::scalar));
  EXPECT_EQ(simd::active_level(), simd::level::scalar);
  ASSERT_TRUE(simd::set_level(detected));
  EXPECT_EQ(simd::active_level(), detected);
}

TEST(SimdKernel, PopcountWordsMatchesReferenceAcrossLevels) {
  level_guard guard;
  for (const std::size_t n : kWordSizes) {
    auto data = random_words(n, 1000 + n);
    // Edge patterns on top of the random fill.
    if (n > 0) {
      data[0] = ~std::uint64_t{0};
      data[n - 1] = 0x8000000000000001ULL;
    }
    const std::size_t expected = naive_popcount(data.data(), n);
    for (const simd::level l : simd::available_levels()) {
      ASSERT_TRUE(simd::set_level(l));
      EXPECT_EQ(simd::popcount_words(data.data(), n), expected)
          << "level=" << simd::level_name(l) << " n=" << n;
    }
  }
}

TEST(SimdKernel, PopcountAnd2And3MatchesReferenceAcrossLevels) {
  level_guard guard;
  for (const std::size_t n : kWordSizes) {
    const auto a = random_words(n, 2000 + n);
    const auto b = random_words(n, 3000 + n);
    const auto c = random_words(n, 4000 + n);
    std::vector<std::uint64_t> and2(n), and3(n);
    for (std::size_t w = 0; w < n; ++w) {
      and2[w] = a[w] & b[w];
      and3[w] = a[w] & b[w] & c[w];
    }
    const std::size_t expected2 = naive_popcount(and2.data(), n);
    const std::size_t expected3 = naive_popcount(and3.data(), n);
    for (const simd::level l : simd::available_levels()) {
      ASSERT_TRUE(simd::set_level(l));
      EXPECT_EQ(simd::popcount_and2(a.data(), b.data(), n), expected2)
          << "level=" << simd::level_name(l) << " n=" << n;
      EXPECT_EQ(simd::popcount_and3(a.data(), b.data(), c.data(), n),
                expected3)
          << "level=" << simd::level_name(l) << " n=" << n;
    }
  }
}

TEST(SimdKernel, AndnotCountMatchesReferenceAcrossLevels) {
  level_guard guard;
  for (const std::size_t n : kWordSizes) {
    auto a = random_words(n, 7000 + n);
    auto b = random_words(n, 8000 + n);
    if (n > 0) {
      // Edge patterns: a full minuend word against an empty subtrahend
      // word (everything survives) and the mirror (nothing does).
      a[0] = ~std::uint64_t{0};
      b[0] = 0;
      a[n - 1] = 0x8000000000000001ULL;
      b[n - 1] = ~std::uint64_t{0};
    }
    std::vector<std::uint64_t> diff(n);
    for (std::size_t w = 0; w < n; ++w) diff[w] = a[w] & ~b[w];
    const std::size_t expected = naive_popcount(diff.data(), n);
    for (const simd::level l : simd::available_levels()) {
      ASSERT_TRUE(simd::set_level(l));
      EXPECT_EQ(simd::andnot_count(a.data(), b.data(), n), expected)
          << "level=" << simd::level_name(l) << " n=" << n;
    }
  }
}

TEST(SimdKernel, OrAccumulateMatchesReferenceAcrossLevels) {
  level_guard guard;
  for (const std::size_t n : kWordSizes) {
    const auto base = random_words(n, 5000 + n);
    const auto src = random_words(n, 6000 + n);
    std::vector<std::uint64_t> expected(n);
    for (std::size_t w = 0; w < n; ++w) expected[w] = base[w] | src[w];
    for (const simd::level l : simd::available_levels()) {
      ASSERT_TRUE(simd::set_level(l));
      auto dst = base;
      simd::or_accumulate(dst.data(), src.data(), n);
      EXPECT_EQ(dst, expected)
          << "level=" << simd::level_name(l) << " n=" << n;
    }
  }
}

/// Random matrix with every tail-word shape; bits past cols stay zero
/// by construction (set via the public API).
bit_matrix random_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  bit_matrix m(rows, cols);
  rng r(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (r.next_u64() & 1u) m.set(i, c);
    }
  }
  return m;
}

// Ragged row widths from the issue checklist: 0, 1, 63, 64, 65,
// 4095-bit rows all exercise distinct tail-word masks.
const std::size_t kBitSizes[] = {0, 1, 63, 64, 65, 130, 4095};

TEST(SimdKernel, BitMatrixKernelsIdenticalAcrossLevels) {
  level_guard guard;
  for (const std::size_t cols : kBitSizes) {
    const bit_matrix m = random_matrix(6, cols, 70 + cols);
    bitvec pair(6), triple(6), wide(6);
    pair.set(0);
    pair.set(3);
    triple.set(1);
    triple.set(2);
    triple.set(4);
    for (std::size_t i = 0; i < 5; ++i) wide.set(i);

    // Scalar first: the reference row of the sweep.
    ASSERT_TRUE(simd::set_level(simd::level::scalar));
    const std::size_t ref_count = m.count();
    const std::size_t ref_row0 = m.count_row(0);
    const std::size_t ref_pair = m.and_count(pair);
    const std::size_t ref_triple = m.and_count(triple);
    const std::size_t ref_wide = m.and_count(wide);
    const bitvec ref_full = m.full_rows();
    const bitvec ref_or = m.or_of_rows();

    for (const simd::level l : simd::available_levels()) {
      ASSERT_TRUE(simd::set_level(l));
      EXPECT_EQ(m.count(), ref_count) << simd::level_name(l);
      EXPECT_EQ(m.count_row(0), ref_row0) << simd::level_name(l);
      EXPECT_EQ(m.and_count(pair), ref_pair) << simd::level_name(l);
      EXPECT_EQ(m.and_count(triple), ref_triple) << simd::level_name(l);
      EXPECT_EQ(m.and_count(wide), ref_wide) << simd::level_name(l);
      EXPECT_EQ(m.full_rows(), ref_full) << simd::level_name(l);
      EXPECT_EQ(m.or_of_rows(), ref_or) << simd::level_name(l);
    }
  }
}

TEST(SimdKernel, BitvecCountIdenticalAcrossLevels) {
  level_guard guard;
  for (const std::size_t bits : kBitSizes) {
    bitvec v(bits);
    rng r(90 + bits);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < bits; ++i) {
      if (r.next_u64() & 1u) {
        v.set(i);
        ++expected;
      }
    }
    for (const simd::level l : simd::available_levels()) {
      ASSERT_TRUE(simd::set_level(l));
      EXPECT_EQ(v.count(), expected)
          << "level=" << simd::level_name(l) << " bits=" << bits;
    }
  }
}

TEST(SimdKernel, BitvecAndAndnotCountsMatchSetAlgebra) {
  level_guard guard;
  for (const std::size_t bits : kBitSizes) {
    bitvec a(bits), b(bits);
    rng r(9000 + bits);
    for (std::size_t i = 0; i < bits; ++i) {
      if (r.next_u64() & 1u) a.set(i);
      if (r.next_u64() & 1u) b.set(i);
    }
    bitvec inter = a;
    inter &= b;
    bitvec diff = a;
    diff.subtract(b);
    for (const simd::level l : simd::available_levels()) {
      ASSERT_TRUE(simd::set_level(l));
      EXPECT_EQ(a.and_count(b), inter.count())
          << "level=" << simd::level_name(l) << " bits=" << bits;
      EXPECT_EQ(a.andnot_count(b), diff.count())
          << "level=" << simd::level_name(l) << " bits=" << bits;
    }
  }
}

TEST(SimdKernel, BlockedTransposeMatchesNaive) {
  // Shapes straddling the 64-bit block and 512-bit macro-tile edges.
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {0, 5},  {5, 0},   {1, 1},    {63, 65},  {64, 64},   {65, 63},
      {130, 257}, {300, 70}, {511, 513}, {513, 511}, {1030, 40}};
  for (const auto& [rows, cols] : shapes) {
    const bit_matrix m = random_matrix(rows, cols, rows * 7919 + cols);
    const bit_matrix t = m.transposed();
    ASSERT_EQ(t.rows(), cols);
    ASSERT_EQ(t.cols(), rows);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t c = 0; c < cols; ++c) {
        ASSERT_EQ(m.test(i, c), t.test(c, i))
            << rows << "x" << cols << " @ (" << i << "," << c << ")";
      }
    }
    EXPECT_EQ(t.transposed(), m);
  }
}

}  // namespace
