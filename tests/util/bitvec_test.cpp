#include "ntom/util/bitvec.hpp"

#include <gtest/gtest.h>

#include "ntom/util/rng.hpp"

namespace ntom {
namespace {

TEST(BitvecTest, StartsEmpty) {
  bitvec b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.empty());
}

TEST(BitvecTest, SetTestReset) {
  bitvec b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(BitvecTest, ClearRemovesAll) {
  bitvec b(65);
  b.set(10);
  b.set(64);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
}

TEST(BitvecTest, UnionIntersectionXor) {
  bitvec a(10), b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  EXPECT_EQ((a | b).to_indices(), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ((a & b).to_indices(), (std::vector<std::size_t>{2}));
  bitvec x = a;
  x ^= b;
  EXPECT_EQ(x.to_indices(), (std::vector<std::size_t>{1, 3}));
}

TEST(BitvecTest, Subtract) {
  bitvec a(10), b(10);
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(2);
  a.subtract(b);
  EXPECT_EQ(a.to_indices(), (std::vector<std::size_t>{1, 3}));
}

TEST(BitvecTest, EqualityIncludesSize) {
  bitvec a(10), b(10), c(11);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  a.set(5);
  EXPECT_FALSE(a == b);
  b.set(5);
  EXPECT_EQ(a, b);
}

TEST(BitvecTest, Intersects) {
  bitvec a(128), b(128);
  a.set(100);
  b.set(101);
  EXPECT_FALSE(a.intersects(b));
  b.set(100);
  EXPECT_TRUE(a.intersects(b));
}

TEST(BitvecTest, SubsetRelation) {
  bitvec a(20), b(20);
  a.set(3);
  b.set(3);
  b.set(4);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  bitvec empty(20);
  EXPECT_TRUE(empty.is_subset_of(a));
}

TEST(BitvecTest, FromIndicesRoundTrip) {
  const std::vector<std::size_t> idx{0, 7, 63, 64, 99};
  const bitvec b = bitvec::from_indices(100, idx);
  EXPECT_EQ(b.to_indices(), idx);
}

TEST(BitvecTest, ForEachVisitsAscending) {
  bitvec b(200);
  b.set(199);
  b.set(0);
  b.set(64);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 64, 199}));
}

TEST(BitvecTest, ToStringFormat) {
  bitvec b(10);
  EXPECT_EQ(b.to_string(), "{}");
  b.set(1);
  b.set(4);
  EXPECT_EQ(b.to_string(), "{1,4}");
}

TEST(BitvecTest, HashDistinguishesContentAndSize) {
  bitvec a(64), b(64), c(65);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  a.set(13);
  EXPECT_NE(a.hash(), b.hash());
}

// Property sweep: random sets obey the algebra identities.
class BitvecPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitvecPropertyTest, SetAlgebraIdentities) {
  rng r(GetParam());
  const std::size_t n = 1 + r.uniform_index(300);
  bitvec a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) a.set(i);
    if (r.bernoulli(0.3)) b.set(i);
  }

  // |A ∪ B| + |A ∩ B| == |A| + |B|.
  EXPECT_EQ((a | b).count() + (a & b).count(), a.count() + b.count());

  // (A \ B) ∩ B == ∅ and (A \ B) ∪ (A ∩ B) == A.
  bitvec diff = a;
  diff.subtract(b);
  EXPECT_FALSE(diff.intersects(b));
  EXPECT_EQ((diff | (a & b)), a);

  // A ⊆ A ∪ B; A ∩ B ⊆ A.
  EXPECT_TRUE(a.is_subset_of(a | b));
  EXPECT_TRUE((a & b).is_subset_of(a));

  // intersects consistent with intersection count.
  EXPECT_EQ(a.intersects(b), (a & b).count() > 0);

  // Round-trip through indices.
  EXPECT_EQ(bitvec::from_indices(n, a.to_indices()), a);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BitvecPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace ntom
