#include "ntom/util/bit_matrix.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "ntom/util/rng.hpp"

namespace ntom {
namespace {

/// Deterministic pseudo-random fill (odd sizes stress the tail masks).
bit_matrix random_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  bit_matrix m(rows, cols);
  rng rand(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rand.next_u64() & 1) m.set(r, c);
    }
  }
  return m;
}

TEST(BitMatrixTest, SetTestResetRoundTrip) {
  bit_matrix m(3, 130);
  EXPECT_FALSE(m.test(2, 129));
  m.set(2, 129);
  EXPECT_TRUE(m.test(2, 129));
  EXPECT_FALSE(m.test(1, 129));
  EXPECT_FALSE(m.test(2, 128));
  m.reset(2, 129);
  EXPECT_FALSE(m.test(2, 129));
}

TEST(BitMatrixTest, RowAndColumnCopies) {
  const bit_matrix m = random_matrix(7, 91, 3);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const bitvec row = m.row_copy(r);
    ASSERT_EQ(row.size(), m.cols());
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(row.test(c), m.test(r, c));
    }
    EXPECT_EQ(row.count(), m.count_row(r));
  }
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const bitvec col = m.column_copy(c);
    ASSERT_EQ(col.size(), m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r) {
      EXPECT_EQ(col.test(r), m.test(r, c));
    }
  }
}

TEST(BitMatrixTest, SetRowMatchesRowCopy) {
  bit_matrix m(4, 77);
  bitvec row(77);
  row.set(0);
  row.set(63);
  row.set(64);
  row.set(76);
  m.set_row(2, row);
  EXPECT_EQ(m.row_copy(2), row);
  EXPECT_EQ(m.count_row(2), 4u);
  EXPECT_EQ(m.count(), 4u);
}

TEST(BitMatrixTest, TransposeMatchesNaive) {
  for (const auto [rows, cols] : {std::pair<std::size_t, std::size_t>{5, 9},
                                  {64, 64},
                                  {65, 127},
                                  {130, 3},
                                  {1, 200}}) {
    const bit_matrix m = random_matrix(rows, cols, rows * 1000 + cols);
    const bit_matrix t = m.transposed();
    ASSERT_EQ(t.rows(), cols);
    ASSERT_EQ(t.cols(), rows);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        ASSERT_EQ(t.test(c, r), m.test(r, c)) << rows << "x" << cols;
      }
    }
    bit_matrix round = t;
    round.transpose();
    EXPECT_TRUE(round == m);
  }
}

TEST(BitMatrixTest, AndCountMatchesExplicitAnd) {
  const bit_matrix m = random_matrix(9, 203, 11);
  for (std::uint32_t mask = 0; mask < 512; mask += 37) {
    bitvec rows(9);
    for (std::size_t r = 0; r < 9; ++r) {
      if (mask & (1u << r)) rows.set(r);
    }
    bitvec acc(203);
    acc.flip();  // all-ones identity for AND.
    rows.for_each_set([&](std::size_t r) { acc &= m.row_copy(r); });
    EXPECT_EQ(m.and_count(rows), acc.count()) << "mask " << mask;
  }
  EXPECT_EQ(m.and_count(bitvec(9)), 203u);  // vacuous AND.
}

TEST(BitMatrixTest, FullRowsAndOrOfRows) {
  bit_matrix m(3, 70);
  for (std::size_t c = 0; c < 70; ++c) m.set(1, c);
  m.set(0, 5);
  const bitvec full = m.full_rows();
  EXPECT_FALSE(full.test(0));
  EXPECT_TRUE(full.test(1));
  EXPECT_FALSE(full.test(2));
  const bitvec any = m.or_of_rows();
  EXPECT_EQ(any.count(), 70u);
  // Zero-column matrices report every row full (vacuous truth).
  EXPECT_EQ(bit_matrix(4, 0).full_rows().count(), 4u);
}

TEST(BitMatrixTest, FlipAllMasksTail) {
  bit_matrix m(2, 67);
  m.set(0, 0);
  m.flip_all();
  EXPECT_FALSE(m.test(0, 0));
  EXPECT_EQ(m.count_row(0), 66u);
  EXPECT_EQ(m.count_row(1), 67u);
  m.flip_all();
  EXPECT_EQ(m.count(), 1u);
  EXPECT_TRUE(m.test(0, 0));
}

TEST(BitMatrixTest, WriteRowBitsSplicesAtAnyOffset) {
  for (const std::size_t offset : {0u, 1u, 63u, 64u, 65u, 100u}) {
    bit_matrix m(1, 200);
    m.flip_all();  // all ones; the splice must overwrite, not just OR.
    bitvec src(70);
    src.set(0);
    src.set(69);
    m.write_row_bits(0, offset, src);
    for (std::size_t c = 0; c < 200; ++c) {
      const bool in_window = c >= offset && c < offset + 70;
      const bool expect =
          in_window ? (c == offset || c == offset + 69) : true;
      ASSERT_EQ(m.test(0, c), expect) << "offset " << offset << " col " << c;
    }
  }
}

TEST(BitMatrixTest, RowAndColumnSlices) {
  const bit_matrix m = random_matrix(11, 137, 29);
  const bit_matrix rows = m.row_slice(3, 8);
  ASSERT_EQ(rows.rows(), 5u);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(rows.row_copy(r), m.row_copy(3 + r));
  }
  for (const auto [begin, end] : {std::pair<std::size_t, std::size_t>{0, 137},
                                  {1, 66},
                                  {64, 128},
                                  {70, 71},
                                  {130, 137}}) {
    const bit_matrix cols = m.column_slice(begin, end);
    ASSERT_EQ(cols.cols(), end - begin);
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = begin; c < end; ++c) {
        ASSERT_EQ(cols.test(r, c - begin), m.test(r, c))
            << begin << ".." << end;
      }
    }
  }
}

TEST(BitMatrixTest, CopyRowsFrom) {
  const bit_matrix src = random_matrix(4, 99, 5);
  bit_matrix dst(10, 99);
  dst.copy_rows_from(src, 3);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(dst.row_copy(3 + r), src.row_copy(r));
  }
  EXPECT_EQ(dst.count_row(0), 0u);
  EXPECT_EQ(dst.count_row(8), 0u);
}

}  // namespace
}  // namespace ntom
