#include "ntom/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ntom/util/rng.hpp"

namespace ntom {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  running_stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  running_stats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, KnownMoments) {
  running_stats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased.
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MatchesTwoPassComputation) {
  rng r(5);
  running_stats s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-10, 10);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(EmpiricalCdfTest, StepFunction) {
  empirical_cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdfTest, Quantiles) {
  empirical_cdf cdf({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
}

TEST(EmpiricalCdfTest, CdfIsMonotone) {
  rng r(9);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(r.uniform());
  empirical_cdf cdf(std::move(xs));
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.01) {
    const double y = cdf.at(x);
    EXPECT_GE(y, prev);
    prev = y;
  }
}

TEST(ErrorMetricsTest, MeanAbsoluteError) {
  EXPECT_DOUBLE_EQ(mean_absolute_error({1.0, 2.0}, {1.5, 1.0}), 0.75);
  EXPECT_DOUBLE_EQ(mean_absolute_error({}, {}), 0.0);
}

TEST(ErrorMetricsTest, AbsoluteErrorsElementwise) {
  const auto errs = absolute_errors({1.0, -2.0, 3.0}, {0.0, 2.0, 3.0});
  ASSERT_EQ(errs.size(), 3u);
  EXPECT_DOUBLE_EQ(errs[0], 1.0);
  EXPECT_DOUBLE_EQ(errs[1], 4.0);
  EXPECT_DOUBLE_EQ(errs[2], 0.0);
}

}  // namespace
}  // namespace ntom
