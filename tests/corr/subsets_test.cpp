#include "ntom/corr/subsets.hpp"

#include <gtest/gtest.h>

#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using namespace topogen;

bitvec all_links(const topology& t) {
  bitvec b(t.num_links());
  for (link_id e = 0; e < t.num_links(); ++e) b.set(e);
  return b;
}

TEST(SubsetCatalogTest, ToyCase1Family) {
  // §5.2: the possible correlation subsets in Case 1 are
  // {e1}, {e2}, {e3}, {e4}, {e2,e3}.
  const topology t = make_toy(toy_case::case1);
  const subset_catalog cat = subset_catalog::build(t, all_links(t));
  EXPECT_EQ(cat.size(), 5u);

  bitvec e23(t.num_links());
  e23.set(toy_e2);
  e23.set(toy_e3);
  EXPECT_NE(cat.find(e23), subset_catalog::npos);
  for (link_id e = 0; e < 4; ++e) {
    EXPECT_NE(cat.singleton_of(e), subset_catalog::npos) << "link " << e;
  }
}

TEST(SubsetCatalogTest, ToyCase2Family) {
  // Case 2 additionally has {e1,e4} (same correlation set).
  const topology t = make_toy(toy_case::case2);
  const subset_catalog cat = subset_catalog::build(t, all_links(t));
  EXPECT_EQ(cat.size(), 6u);
  bitvec e14(t.num_links());
  e14.set(toy_e1);
  e14.set(toy_e4);
  EXPECT_NE(cat.find(e14), subset_catalog::npos);
}

TEST(SubsetCatalogTest, SubsetAsMatchesMembers) {
  const topology t = make_toy(toy_case::case1);
  const subset_catalog cat = subset_catalog::build(t, all_links(t));
  for (std::size_t i = 0; i < cat.size(); ++i) {
    cat.subset(i).for_each([&](std::size_t e) {
      EXPECT_EQ(t.link(static_cast<link_id>(e)).as_number, cat.subset_as(i));
    });
  }
}

TEST(SubsetCatalogTest, PotcongRestrictionShrinksFamily) {
  const topology t = make_toy(toy_case::case1);
  bitvec potcong(t.num_links());
  potcong.set(toy_e1);
  potcong.set(toy_e2);
  const subset_catalog cat = subset_catalog::build(t, potcong);
  // Only {e1} and {e2} remain.
  EXPECT_EQ(cat.size(), 2u);
  EXPECT_EQ(cat.singleton_of(toy_e3), subset_catalog::npos);
}

TEST(SubsetCatalogTest, SizeCapExcludesLargeUnions) {
  const topology t = make_toy(toy_case::case1);
  subset_limits limits;
  limits.max_subset_size = 1;
  const subset_catalog cat = subset_catalog::build(t, all_links(t), limits);
  for (std::size_t i = 0; i < cat.size(); ++i) {
    EXPECT_EQ(cat.subset(i).count(), 1u);
  }
  // Per-path intersections of size 2 ({e2,e3} is only reachable via
  // unions) — singles survive.
  EXPECT_EQ(cat.size(), 4u);
}

TEST(SubsetCatalogTest, PerAsCountCap) {
  const topology t = make_toy(toy_case::case1);
  subset_limits limits;
  limits.max_subsets_per_as = 1;
  const subset_catalog cat = subset_catalog::build(t, all_links(t), limits);
  // At most one subset per AS survives.
  EXPECT_LE(cat.size(), t.num_ases());
}

TEST(SubsetCatalogTest, DeterministicOrder) {
  const topology t = make_toy(toy_case::case2);
  const subset_catalog a = subset_catalog::build(t, all_links(t));
  const subset_catalog b = subset_catalog::build(t, all_links(t));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.subset(i), b.subset(i));
  }
}

TEST(SubsetCatalogTest, FindMissingReturnsNpos) {
  const topology t = make_toy(toy_case::case1);
  const subset_catalog cat = subset_catalog::build(t, all_links(t));
  bitvec e12(t.num_links());
  e12.set(toy_e1);
  e12.set(toy_e2);
  // {e1,e2} spans two correlation sets — never a correlation subset.
  EXPECT_EQ(cat.find(e12), subset_catalog::npos);
}

TEST(SubsetCatalogTest, SingletonIndicesConsistent) {
  const topology t = make_toy(toy_case::case1);
  const subset_catalog cat = subset_catalog::build(t, all_links(t));
  for (const std::size_t i : cat.singleton_indices()) {
    EXPECT_EQ(cat.subset(i).count(), 1u);
    const auto e = static_cast<link_id>(cat.subset(i).to_indices().front());
    EXPECT_EQ(cat.singleton_of(e), i);
  }
}

}  // namespace
}  // namespace ntom
