#include "ntom/corr/joint.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ntom/util/rng.hpp"

namespace ntom {
namespace {

/// g backed by an explicit joint distribution over k binary links:
/// state_prob[mask] = P(links in mask congested, rest good).
class joint_distribution {
 public:
  explicit joint_distribution(std::vector<double> state_prob)
      : state_prob_(std::move(state_prob)) {
    k_ = 0;
    while ((std::size_t{1} << k_) < state_prob_.size()) ++k_;
  }

  /// P(all links in `set` good) = sum of states where set ∩ mask = ∅.
  double good(const bitvec& set) const {
    double total = 0.0;
    for (std::size_t mask = 0; mask < state_prob_.size(); ++mask) {
      bool compatible = true;
      set.for_each([&](std::size_t e) {
        if (mask & (std::size_t{1} << e)) compatible = false;
      });
      if (compatible) total += state_prob_[mask];
    }
    return total;
  }

  /// P(all links in `set` congested).
  double congested(const bitvec& set) const {
    double total = 0.0;
    for (std::size_t mask = 0; mask < state_prob_.size(); ++mask) {
      bool all = true;
      set.for_each([&](std::size_t e) {
        if (!(mask & (std::size_t{1} << e))) all = false;
      });
      if (all) total += state_prob_[mask];
    }
    return total;
  }

  double exact(const bitvec& congested_set, const bitvec& good_set) const {
    double total = 0.0;
    for (std::size_t mask = 0; mask < state_prob_.size(); ++mask) {
      bool match = true;
      congested_set.for_each([&](std::size_t e) {
        if (!(mask & (std::size_t{1} << e))) match = false;
      });
      good_set.for_each([&](std::size_t e) {
        if (mask & (std::size_t{1} << e)) match = false;
      });
      if (match) total += state_prob_[mask];
    }
    return total;
  }

  std::size_t k() const { return k_; }

 private:
  std::vector<double> state_prob_;
  std::size_t k_ = 0;
};

good_probability_fn to_fn(const joint_distribution& d) {
  return [&d](const bitvec& b) -> std::optional<double> { return d.good(b); };
}

TEST(SetCongestionTest, SingleLink) {
  // P(congested) = 0.3.
  joint_distribution d({0.7, 0.3});
  bitvec set(1);
  set.set(0);
  const auto p = set_congestion_probability(set, to_fn(d));
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 0.3, 1e-12);
}

TEST(SetCongestionTest, EmptySetIsOne) {
  joint_distribution d({0.7, 0.3});
  const auto p = set_congestion_probability(bitvec(1), to_fn(d));
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(*p, 1.0);
}

TEST(SetCongestionTest, PerfectlyCorrelatedPair) {
  // Both good w.p. 0.8, both congested w.p. 0.2.
  joint_distribution d({0.8, 0.0, 0.0, 0.2});
  bitvec both(2);
  both.set(0);
  both.set(1);
  const auto p = set_congestion_probability(both, to_fn(d));
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 0.2, 1e-12);
}

TEST(SetCongestionTest, MissingGReturnsNullopt) {
  const good_probability_fn g = [](const bitvec&) -> std::optional<double> {
    return std::nullopt;
  };
  bitvec set(2);
  set.set(0);
  EXPECT_FALSE(set_congestion_probability(set, g).has_value());
}

TEST(ExactStateTest, TwoLinkStates) {
  // Independent links: p0 = 0.3, p1 = 0.5.
  // state_prob[mask] with bit0 = link0 congested.
  joint_distribution d({0.7 * 0.5, 0.3 * 0.5, 0.7 * 0.5, 0.3 * 0.5});
  bitvec congested(2), good(2);
  congested.set(0);
  good.set(1);
  const auto p = exact_state_probability(congested, good, to_fn(d));
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 0.3 * 0.5, 1e-12);
}

// Property: inclusion-exclusion reproduces the direct computation for
// random joint distributions of up to 5 links.
class JointPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JointPropertyTest, InclusionExclusionMatchesDirect) {
  rng r(GetParam());
  const std::size_t k = 1 + r.uniform_index(5);
  std::vector<double> probs(std::size_t{1} << k);
  double total = 0.0;
  for (auto& p : probs) {
    p = r.uniform();
    total += p;
  }
  for (auto& p : probs) p /= total;
  const joint_distribution d(probs);

  // Random subsets S and disjoint R.
  for (int trial = 0; trial < 10; ++trial) {
    bitvec s(k), rr(k);
    for (std::size_t i = 0; i < k; ++i) {
      const double u = r.uniform();
      if (u < 0.4) {
        s.set(i);
      } else if (u < 0.7) {
        rr.set(i);
      }
    }
    const auto via_ie = set_congestion_probability(s, to_fn(d));
    ASSERT_TRUE(via_ie.has_value());
    EXPECT_NEAR(*via_ie, d.congested(s), 1e-10);

    const auto state_ie = exact_state_probability(s, rr, to_fn(d));
    ASSERT_TRUE(state_ie.has_value());
    EXPECT_NEAR(*state_ie, d.exact(s, rr), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, JointPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace ntom
