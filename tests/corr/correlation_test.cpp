#include "ntom/corr/correlation.hpp"

#include <gtest/gtest.h>

#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using namespace topogen;

TEST(PotentiallyCongestedTest, PaperExample) {
  // §5.2: if p3 is always good, e3 and e4 are always good, so the
  // potentially congested links are {e1, e2}.
  const topology t = make_toy(toy_case::case1);
  bitvec always_good(t.num_paths());
  always_good.set(toy_p3);
  const bitvec potcong = potentially_congested_links(t, always_good);
  EXPECT_EQ(potcong.to_indices(), (std::vector<std::size_t>{toy_e1, toy_e2}));
}

TEST(PotentiallyCongestedTest, NoAlwaysGoodPaths) {
  const topology t = make_toy(toy_case::case1);
  const bitvec none(t.num_paths());
  const bitvec potcong = potentially_congested_links(t, none);
  EXPECT_EQ(potcong.count(), 4u);
}

TEST(PotentiallyCongestedTest, AllPathsAlwaysGood) {
  const topology t = make_toy(toy_case::case1);
  bitvec all(t.num_paths());
  for (path_id p = 0; p < t.num_paths(); ++p) all.set(p);
  EXPECT_TRUE(potentially_congested_links(t, all).empty());
}

TEST(PotentiallyCongestedTest, UncoveredLinksNeverQualify) {
  topology t(2);
  t.add_link({.as_number = 0, .router_links = {0}, .edge = false});
  t.add_link({.as_number = 0, .router_links = {1}, .edge = false});  // no path
  t.add_path({0});
  t.finalize();
  const bitvec none(t.num_paths());
  const bitvec potcong = potentially_congested_links(t, none);
  EXPECT_TRUE(potcong.test(0));
  EXPECT_FALSE(potcong.test(1));
}

TEST(CorrelationSetOfTest, RestrictedToPotcong) {
  const topology t = make_toy(toy_case::case1);
  bitvec potcong(t.num_links());
  potcong.set(toy_e2);  // e3 not potentially congested.
  const bitvec cset = correlation_set_of(t, toy_e2, potcong);
  EXPECT_EQ(cset.to_indices(), (std::vector<std::size_t>{toy_e2}));
}

TEST(SubsetComplementTest, PaperExamples) {
  // §5.2 (Case 1, all potentially congested): complement of {e2} is
  // {e3}, of {e2,e3} is ∅, of {e1} is ∅.
  const topology t = make_toy(toy_case::case1);
  bitvec potcong(t.num_links());
  for (link_id e = 0; e < 4; ++e) potcong.set(e);

  bitvec e2(t.num_links());
  e2.set(toy_e2);
  EXPECT_EQ(subset_complement(t, e2, 1, potcong).to_indices(),
            (std::vector<std::size_t>{toy_e3}));

  bitvec e23(t.num_links());
  e23.set(toy_e2);
  e23.set(toy_e3);
  EXPECT_TRUE(subset_complement(t, e23, 1, potcong).empty());

  bitvec e1(t.num_links());
  e1.set(toy_e1);
  EXPECT_TRUE(subset_complement(t, e1, 0, potcong).empty());
}

TEST(SubsetComplementTest, AlwaysGoodLinksExcluded) {
  const topology t = make_toy(toy_case::case1);
  bitvec potcong(t.num_links());
  potcong.set(toy_e2);  // e3 is always good.
  bitvec e2(t.num_links());
  e2.set(toy_e2);
  // Complement within potcong must not contain the always-good e3.
  EXPECT_TRUE(subset_complement(t, e2, 1, potcong).empty());
}

}  // namespace
}  // namespace ntom
