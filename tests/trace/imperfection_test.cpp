#include "ntom/trace/imperfection.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ntom/exp/runner.hpp"
#include "ntom/sim/packet_sim.hpp"

namespace ntom {
namespace {

run_config small_config(std::size_t intervals = 40) {
  run_config config;
  config.topo = "toy";
  config.topo_seed = 3;
  config.scenario = "random_congestion";
  config.scenario_opts.seed = 11;
  config.sim.intervals = intervals;
  config.sim.packets_per_path = 50;
  config.sim.seed = 17;
  return config;
}

/// Streams the config's simulation through the decorator list into a
/// materializing store.
experiment_data degraded(const run_config& config, const std::string& list,
                         std::size_t chunk = 16) {
  run_config streaming = config;
  streaming.stream.chunk_intervals = chunk;
  const run_artifacts run = prepare_topology(streaming);
  experiment_data data;
  materialize_sink store(data);
  const imperfection_chain chain(list);
  std::vector<std::unique_ptr<imperfection_sink>> stages;
  measurement_sink& head = chain.build(store, stages);
  stream_experiment(run, streaming, head);
  return data;
}

TEST(ImperfectionTest, SubsampleKeepsEveryStrideTh) {
  const run_config config = small_config(40);
  const run_artifacts live = prepare_run(config);
  const experiment_data sub = degraded(config, "subsample,stride=3,offset=1");
  ASSERT_EQ(sub.intervals, 13u);  // intervals 1, 4, ..., 37.
  for (std::size_t t = 0; t < sub.intervals; ++t) {
    const std::size_t source = 1 + 3 * t;
    EXPECT_EQ(sub.congested_paths_at(t).to_string(),
              live.data.congested_paths_at(source).to_string());
    EXPECT_EQ(sub.true_links_at(t).to_string(),
              live.data.true_links_at(source).to_string());
  }
}

TEST(ImperfectionTest, BlackoutRemovesTheRange) {
  const run_config config = small_config(40);
  const run_artifacts live = prepare_run(config);
  const experiment_data cut = degraded(config, "blackout,start=10,length=5");
  ASSERT_EQ(cut.intervals, 35u);
  for (std::size_t t = 0; t < cut.intervals; ++t) {
    const std::size_t source = t < 10 ? t : t + 5;
    EXPECT_EQ(cut.congested_paths_at(t).to_string(),
              live.data.congested_paths_at(source).to_string());
  }
}

TEST(ImperfectionTest, DropIsSeedDeterministic) {
  const run_config config = small_config(60);
  const experiment_data a = degraded(config, "drop,p=0.3,seed=5");
  const experiment_data b = degraded(config, "drop,p=0.3,seed=5", 7);
  ASSERT_EQ(a.intervals, b.intervals);
  EXPECT_TRUE(a.path_good == b.path_good);
  EXPECT_TRUE(a.true_links == b.true_links);
  EXPECT_LT(a.intervals, 60u);
  EXPECT_GT(a.intervals, 0u);

  const experiment_data other = degraded(config, "drop,p=0.3,seed=6");
  // Different seed, different surviving set (counts may coincide, but
  // not the whole selection on 60 intervals with p=0.3).
  EXPECT_FALSE(a.intervals == other.intervals &&
               a.path_good == other.path_good);
}

TEST(ImperfectionTest, DecoratorsChainInOrder) {
  const run_config config = small_config(40);
  // Stage 1 keeps even intervals (20 remain, renumbered 0..19); stage 2
  // blacks out renumbered 5..9 — i.e. source intervals 10, 12, ..., 18.
  const experiment_data chained =
      degraded(config, "subsample,stride=2 ; blackout,start=5,length=5");
  ASSERT_EQ(chained.intervals, 15u);
  const run_artifacts live = prepare_run(config);
  for (std::size_t t = 0; t < chained.intervals; ++t) {
    const std::size_t renumbered = t < 5 ? t : t + 5;
    const std::size_t source = 2 * renumbered;
    EXPECT_EQ(chained.congested_paths_at(t).to_string(),
              live.data.congested_paths_at(source).to_string());
  }
}

TEST(ImperfectionTest, RejectsBadSpecs) {
  EXPECT_THROW(imperfection_chain("no_such_decorator"), spec_error);
  EXPECT_THROW(imperfection_chain("drop,probability=0.1"), spec_error);
  EXPECT_THROW((void)degraded(small_config(), "drop,p=1.5"), spec_error);
  EXPECT_THROW((void)degraded(small_config(), "subsample,stride=0"),
               spec_error);
  EXPECT_THROW((void)degraded(small_config(), "subsample,stride=2,offset=2"),
               spec_error);
}

TEST(ImperfectionTest, ValidationFailsAtParseTimeWithByteOffsets) {
  // Factory-level validation (stride/offset/p ranges) runs in the
  // imperfection_chain constructor — a bad spec fails when the list is
  // parsed, never mid-capture from build().
  EXPECT_THROW(imperfection_chain("subsample,stride=0"), spec_error);
  EXPECT_THROW(imperfection_chain("subsample,stride=3,offset=3"), spec_error);
  EXPECT_NO_THROW(imperfection_chain("subsample,stride=4,offset=3"));

  try {
    imperfection_chain("drop,p=0.2 ; subsample,stride=4,offset=7");
    FAIL() << "expected spec_error";
  } catch (const spec_error& err) {
    // The error is rebased to the offending item's byte position in
    // the ';'-separated list, and names the bad option.
    EXPECT_EQ(err.offset(), 12u);
    EXPECT_EQ(err.token(), "offset");
    const std::string what = err.what();
    EXPECT_NE(what.find("at byte 12"), std::string::npos) << what;
    EXPECT_NE(what.find("must be < stride"), std::string::npos) << what;
  }
}

TEST(ImperfectionTest, RegistryDescribesBuiltins) {
  const auto names = imperfection_registry().names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_NE(imperfection_registry().describe().find("blackout"),
            std::string::npos);
}

}  // namespace
}  // namespace ntom
