#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ntom/exp/runner.hpp"
#include "ntom/trace/trace_reader.hpp"
#include "ntom/trace/trace_writer.hpp"
#include "ntom/util/crc32.hpp"

namespace ntom {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

run_config small_config(std::size_t intervals = 60) {
  run_config config;
  config.topo = "toy";
  config.topo_seed = 3;
  config.scenario = "random_congestion";
  config.scenario_opts.seed = 11;
  config.sim.intervals = intervals;
  config.sim.packets_per_path = 50;
  config.sim.seed = 17;
  return config;
}

/// Captures the config's stream at the given chunk size.
void capture(const run_config& config, const std::string& path,
             std::size_t chunk, bool store_truth = true) {
  run_config streaming = config;
  streaming.stream.chunk_intervals = chunk;
  const run_artifacts run = prepare_topology(streaming);
  trace_writer_options options;
  options.store_truth = store_truth;
  options.provenance = "test-capture";
  trace_writer writer(path, options);
  stream_experiment(run, streaming, writer);
}

/// Streams the whole file into a discarding sink (verifies every frame).
void null_replay(const trace_reader& reader) {
  struct discard final : measurement_sink {
    void consume(const measurement_chunk&) override {}
  } sink;
  reader.stream(sink, 32);
}

experiment_data replay_materialized(const std::string& path,
                                    std::size_t chunk) {
  const trace_reader reader(path);
  experiment_data data;
  materialize_sink sink(data);
  reader.stream(sink, chunk);
  return data;
}

void expect_data_equal(const experiment_data& a, const experiment_data& b,
                       bool compare_truth = true) {
  ASSERT_EQ(a.intervals, b.intervals);
  EXPECT_TRUE(a.path_good == b.path_good);
  EXPECT_EQ(a.always_good_paths.to_string(), b.always_good_paths.to_string());
  if (compare_truth) {
    EXPECT_TRUE(a.true_links == b.true_links);
    EXPECT_EQ(a.ever_congested_links.to_string(),
              b.ever_congested_links.to_string());
  }
}

TEST(TraceFormatTest, RoundTripsDataAndMetadata) {
  const run_config config = small_config();
  const std::string path = temp_path("roundtrip.trc");
  capture(config, path, 16);

  const trace_reader reader(path);
  EXPECT_EQ(reader.intervals(), config.sim.intervals);
  EXPECT_TRUE(reader.has_truth());
  EXPECT_EQ(reader.provenance(), "test-capture");
  EXPECT_GT(reader.frames(), 1u);

  const run_artifacts live = prepare_run(config);
  EXPECT_EQ(reader.topology_ptr()->num_paths(), live.topo().num_paths());
  EXPECT_EQ(reader.topology_ptr()->num_links(), live.topo().num_links());

  expect_data_equal(replay_materialized(path, 64), live.data);
  std::remove(path.c_str());
}

TEST(TraceFormatTest, RechunkingIsBitIdentical) {
  const run_config config = small_config(70);
  const run_artifacts live = prepare_run(config);
  // Capture at several granularities, replay each at several different
  // granularities: every combination must materialize the same bits.
  for (const std::size_t capture_chunk : {1ul, 7ul, 64ul, 256ul}) {
    const std::string path = temp_path("rechunk.trc");
    capture(config, path, capture_chunk);
    for (const std::size_t replay_chunk : {1ul, 13ul, 1000ul}) {
      expect_data_equal(replay_materialized(path, replay_chunk), live.data);
    }
    std::remove(path.c_str());
  }
}

TEST(TraceFormatTest, TruthStrippedTraceOmitsThePlane) {
  const run_config config = small_config();
  const std::string with_truth = temp_path("with_truth.trc");
  const std::string without = temp_path("without_truth.trc");
  capture(config, with_truth, 32, true);
  capture(config, without, 32, false);

  const trace_reader reader(without);
  EXPECT_FALSE(reader.has_truth());

  const experiment_data stripped = replay_materialized(without, 64);
  const experiment_data full = replay_materialized(with_truth, 64);
  expect_data_equal(stripped, full, /*compare_truth=*/false);
  EXPECT_EQ(stripped.true_links.count(), 0u);
  EXPECT_GT(full.true_links.count(), 0u);

  // And the file actually shrinks.
  std::ifstream a(without, std::ios::binary | std::ios::ate);
  std::ifstream b(with_truth, std::ios::binary | std::ios::ate);
  EXPECT_LT(a.tellg(), b.tellg());
  std::remove(with_truth.c_str());
  std::remove(without.c_str());
}

TEST(TraceFormatTest, TruncatedFilesFailCleanly) {
  const std::string path = temp_path("truncate.trc");
  capture(small_config(), path, 16);
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();

  for (const double fraction : {0.0, 0.1, 0.5, 0.9}) {
    const auto keep = static_cast<std::size_t>(
        fraction * static_cast<double>(bytes.size()));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW(trace_reader reader(path), trace_error) << fraction;
  }
  // Losing just the trailer's last byte is also detected at open.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 1));
  out.close();
  EXPECT_THROW(trace_reader reader(path), trace_error);
  std::remove(path.c_str());
}

TEST(TraceFormatTest, BitFlipsFailCleanly) {
  const std::string path = temp_path("bitflip.trc");
  capture(small_config(), path, 16);
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();

  // A flip anywhere — header, frames, trailer — must surface as a
  // clean trace_error either at open or during a stream pass.
  const std::size_t positions[] = {9, bytes.size() / 3, bytes.size() / 2,
                                   bytes.size() - 6};
  for (const std::size_t pos : positions) {
    std::vector<char> corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x10);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(corrupted.data(),
              static_cast<std::streamsize>(corrupted.size()));
    out.close();
    EXPECT_THROW(
        {
          const trace_reader reader(path);
          null_replay(reader);
        },
        trace_error)
        << "flip at byte " << pos;
  }
  std::remove(path.c_str());
}

TEST(TraceFormatTest, RejectsImplausibleIntervalCounts) {
  // A hostile header declaring a huge T with VALID CRCs (the attacker
  // controls the checksums too) must fail at open — never reach a
  // downstream consumer that sizes allocations from intervals().
  const std::string path = temp_path("huge.trc");
  capture(small_config(), path, 16);
  std::ifstream in(path, std::ios::binary);
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  in.close();

  const auto put_u64 = [&](std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes[at + static_cast<std::size_t>(i)] =
          static_cast<unsigned char>(v >> (8 * i));
    }
  };
  const auto put_u32 = [&](std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes[at + static_cast<std::size_t>(i)] =
          static_cast<unsigned char>(v >> (8 * i));
    }
  };
  const auto get_u32 = [&](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[at + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    return v;
  };

  const std::uint64_t huge = std::uint64_t{1} << 50;
  put_u64(16, huge);  // header intervals.
  // Re-seal the header CRC (header = everything before the CRC field;
  // its end is derived from the two length prefixes).
  const std::size_t prov_len = get_u32(40);
  const std::size_t topo_len_at = 44 + prov_len;
  const std::size_t header_end = topo_len_at + 4 + get_u32(topo_len_at);
  put_u32(header_end, crc32(bytes.data(), header_end));
  // Matching trailer totals, re-sealed too (v2 trailer: magic + 24-byte
  // totals + CRC).
  const std::size_t totals_at = bytes.size() - 28;
  put_u64(totals_at + 8, huge);
  put_u32(bytes.size() - 4, crc32(bytes.data() + totals_at, 24));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_THROW(trace_reader reader(path), trace_error);
  std::remove(path.c_str());
}

TEST(TraceFormatTest, RejectsOverflowingFrameCounts) {
  // A crafted frame whose count wraps `seen + count` must fail the
  // contiguity check, not bypass it into an out-of-bounds chunk write.
  const run_config config = small_config(60);
  const std::string path = temp_path("overflow.trc");
  capture(config, path, 16);  // frames of 16, 16, 16, 12 intervals.
  std::ifstream in(path, std::ios::binary);
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  in.close();

  // The second frame's count field sits 12 bytes into the frame; its
  // offset comes straight from the file's own CIDX index.
  const trace_reader valid(path);
  ASSERT_TRUE(valid.has_index());
  ASSERT_GE(valid.index().size(), 2u);
  const std::size_t frame2_count_at =
      static_cast<std::size_t>(valid.index()[1].offset) + 4 + 8;
  // count = 2^64 - 3: seen(16) + count wraps to a tiny value.
  const std::uint64_t huge = ~std::uint64_t{0} - 2;
  for (int i = 0; i < 8; ++i) {
    bytes[frame2_count_at + static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(huge >> (8 * i));
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_THROW(
      {
        const trace_reader reader(path);
        null_replay(reader);
      },
      trace_error);
  std::remove(path.c_str());
}

TEST(TraceFormatTest, MakeScenarioRejectsTraceSpecs) {
  // `trace` never builds a congestion model — an empty one would break
  // the simulator's at-least-one-phase invariant, so a direct
  // make_scenario call is rejected loudly.
  const run_config config = small_config();
  const run_artifacts run = prepare_topology(config);
  EXPECT_THROW((void)make_scenario(run.topo(),
                                   spec("trace").with_option("file", "x.trc")),
               spec_error);
}

TEST(TraceFormatTest, RejectsForeignAndFutureFiles) {
  const std::string path = temp_path("bogus.trc");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a trace file, but long enough to have "
           "a trailer-sized suffix";
  }
  EXPECT_THROW(trace_reader reader(path), trace_error);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "short";
  }
  EXPECT_THROW(trace_reader reader(path), trace_error);
  EXPECT_THROW(trace_reader reader(temp_path("does_not_exist.trc")),
               trace_error);
  std::remove(path.c_str());
}

TEST(TraceFormatTest, TrailingGarbageFailsTheStream) {
  const std::string path = temp_path("garbage.trc");
  capture(small_config(), path, 16);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra";
  }
  // Appended bytes shift the end-relative trailer read (caught at
  // open); mid-file garbage that survives the trailer scan is caught by
  // the full-file stream pass's frames-end check.
  EXPECT_THROW(
      {
        const trace_reader reader(path);
        null_replay(reader);
      },
      trace_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ntom
