// Capture -> replay equivalence across the whole estimator pipeline:
// a corpus recorded from a registered scenario must replay through
// estimator_eval / the experiment facade / run_grid with bit-identical
// per-estimator rows and aggregates, at any capture or replay chunk
// size; truth-stripped corpora must still run end to end with
// observation-only scoring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ntom/api/experiment.hpp"
#include "ntom/exp/evals.hpp"
#include "ntom/trace/import.hpp"
#include "ntom/trace/trace_reader.hpp"

namespace ntom {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

run_config base_config(std::size_t intervals = 60) {
  run_config config;
  config.topo = "brite,n=10,hosts=30,paths=60";
  config.topo_seed = 5;
  config.scenario = "no_independence";
  config.scenario_opts.seed = 7;
  config.sim.intervals = intervals;
  config.sim.packets_per_path = 50;
  config.sim.seed = 9;
  return config;
}

spec trace_spec(const std::string& path) {
  return spec("trace").with_option("file", path);
}

bool rows_identical(const std::vector<measurement>& a,
                    const std::vector<measurement>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].series != b[i].series || a[i].metric != b[i].metric ||
        a[i].value != b[i].value) {
      return false;
    }
  }
  return true;
}

bool has_metric(const std::vector<measurement>& rows,
                const std::string& metric) {
  for (const measurement& m : rows) {
    if (m.metric == metric) return true;
  }
  return false;
}

// Mixes streaming (sparsity, independence) and store-needing
// (bayes-corr) estimators so both fit paths run.
const std::vector<estimator_spec> kEstimators = {"sparsity", "independence",
                                                 "bayes-corr"};

TEST(TracePipelineTest, CapturedRunReplaysBitIdentically) {
  run_config config = base_config();
  const std::string path = temp_path("pipeline_materialized.trc");
  config.capture.path = path;  // capture rides prepare_run's one pass.

  const batch_eval_fn eval = estimator_eval(
      kEstimators, {.boolean_metrics = true, .link_error_metrics = false});
  const run_artifacts live = prepare_run(config);
  const auto live_rows = eval(config, live);

  for (const std::size_t chunk : {1ul, 97ul, 1024ul}) {
    run_config replay;
    replay.scenario = trace_spec(path);
    replay.stream.chunk_intervals = chunk;
    const run_artifacts replayed = prepare_run(replay);
    EXPECT_TRUE(replayed.replayed());
    EXPECT_TRUE(replayed.has_truth());
    EXPECT_TRUE(rows_identical(live_rows, eval(replay, replayed)))
        << "replay chunk " << chunk;

    // Streamed replay too: the reader is the chunk source.
    run_config streamed = replay;
    streamed.stream.enabled = true;
    const run_artifacts streamed_run = prepare_topology(streamed);
    EXPECT_TRUE(rows_identical(live_rows, eval(streamed, streamed_run)))
        << "streamed replay chunk " << chunk;
  }
  std::remove(path.c_str());
}

TEST(TracePipelineTest, StreamedFitPassCaptures) {
  // In streamed mode the capture rides the estimator fit pass
  // (fit_streamed's fanout) — prepare never materializes.
  run_config config = base_config();
  config.stream.enabled = true;
  config.stream.chunk_intervals = 7;
  const std::string path = temp_path("pipeline_streamed.trc");
  config.capture.path = path;

  const batch_eval_fn eval = estimator_eval(
      kEstimators, {.boolean_metrics = true, .link_error_metrics = false});
  const run_artifacts live = prepare_topology(config);
  const auto live_rows = eval(config, live);

  run_config replay;
  replay.scenario = trace_spec(path);
  const run_artifacts replayed = prepare_run(replay);
  EXPECT_TRUE(rows_identical(live_rows, eval(replay, replayed)));
  std::remove(path.c_str());
}

TEST(TracePipelineTest, CorpusRidesTheFacadeAndGrid) {
  // Capture a 2-scenario x 2-replica corpus through the facade (grid
  // scheduler, capture riding each run), replay every file as a trace
  // arm through the same facade, and demand bit-identical per-run
  // measurement rows.
  const std::string dir = temp_path("corpus");
  std::filesystem::create_directories(dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::filesystem::remove(entry.path());
  }

  batch_params params;
  params.threads = 2;
  params.base_seed = 42;
  const batch_report live_report =
      experiment()
          .with_topology("brite,n=10,hosts=30,paths=60")
          .with_scenario("random_congestion")
          .with_scenario("srlg")
          .with_estimators({"sparsity", "bayes-indep"})
          .measure_link_error(false)
          .intervals(50)
          .replicas(2)
          .with_capture({dir})
          .run(params);

  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  ASSERT_EQ(files.size(), live_report.runs().size());

  experiment replayed;
  replayed.with_topology("toy,label=replay");
  for (const std::string& f : files) {
    replayed.with_scenario(trace_spec(f).with_option(
        "label", std::filesystem::path(f).stem().string()));
  }
  replayed.with_estimators({"sparsity", "bayes-indep"});
  replayed.measure_link_error(false);
  const batch_report replay_report = replayed.run(params);
  ASSERT_EQ(replay_report.runs().size(), files.size());

  // Capture file names end in the live run's index, so pair each
  // replay run (labelled by file stem) with its origin and compare the
  // rows bit-for-bit.
  for (const run_result& replay_run : replay_report.runs()) {
    const std::string stem = replay_run.label.substr(
        replay_run.label.find('/') + 1);
    const std::size_t live_index =
        std::stoul(stem.substr(stem.rfind('_') + 1));
    ASSERT_LT(live_index, live_report.runs().size());
    EXPECT_TRUE(rows_identical(live_report.runs()[live_index].measurements,
                               replay_run.measurements))
        << "corpus file " << stem;
  }
  for (const std::string& f : files) std::remove(f.c_str());
}

TEST(TracePipelineTest, TruthStrippedReplayScoresObservationOnly) {
  run_config config = base_config();
  config.capture.truth = false;
  const std::string path = temp_path("truthless.trc");
  config.capture.path = path;
  (void)prepare_run(config);

  const batch_eval_fn eval = estimator_eval(
      kEstimators, {.boolean_metrics = true, .link_error_metrics = true});
  run_config replay;
  replay.scenario = trace_spec(path);
  const run_artifacts replayed = prepare_run(replay);
  EXPECT_FALSE(replayed.has_truth());
  const auto rows = eval(replay, replayed);

  // Observation-only rows for Boolean-capable estimators; never truth
  // metrics, never link errors (no analytic model on replay).
  EXPECT_TRUE(has_metric(rows, "explained_rate"));
  EXPECT_TRUE(has_metric(rows, "consistency_rate"));
  EXPECT_TRUE(has_metric(rows, "inferred_links_mean"));
  EXPECT_FALSE(has_metric(rows, "detection_rate"));
  EXPECT_FALSE(has_metric(rows, "mean_abs_error"));

  // Streamed scoring pass produces the same observation rows.
  run_config streamed = replay;
  streamed.stream.enabled = true;
  streamed.stream.chunk_intervals = 13;
  const run_artifacts streamed_run = prepare_topology(streamed);
  EXPECT_TRUE(rows_identical(rows, eval(streamed, streamed_run)));
  std::remove(path.c_str());
}

TEST(TracePipelineTest, RecapturingTruthlessReplayStaysTruthless) {
  // Re-recording a replayed truth-less source must not promote its
  // zeroed truth matrices into a "real" plane: the derived dataset
  // stays truth-less even though capture_truth defaults to true.
  run_config config = base_config();
  config.capture.truth = false;
  const std::string original = temp_path("derived_src.trc");
  config.capture.path = original;
  (void)prepare_run(config);

  run_config replay;
  replay.scenario = trace_spec(original);
  const std::string derived = temp_path("derived_out.trc");
  replay.capture.path = derived;
  const run_artifacts replayed = prepare_run(replay);
  EXPECT_FALSE(replayed.has_truth());

  const trace_reader reader(derived);
  EXPECT_FALSE(reader.has_truth());
  std::remove(original.c_str());
  std::remove(derived.c_str());
}

TEST(TracePipelineTest, ImperfectReplayIsDeterministic) {
  run_config config = base_config();
  const std::string path = temp_path("imperfect.trc");
  config.capture.path = path;
  (void)prepare_run(config);

  run_config replay;
  replay.scenario = trace_spec(path).with_option(
      "imperfect", "drop,p=0.2,seed=4;subsample,stride=2");
  const run_artifacts a = prepare_run(replay);
  const run_artifacts b = prepare_run(replay);
  ASSERT_GT(a.data.intervals, 0u);
  EXPECT_LT(a.data.intervals, 35u);  // ~60 * 0.8 / 2.
  EXPECT_EQ(a.data.intervals, b.data.intervals);
  EXPECT_TRUE(a.data.path_good == b.data.path_good);
  std::remove(path.c_str());
}

TEST(TracePipelineTest, TraceScenarioErrors) {
  run_config missing_option;
  missing_option.scenario = "trace";
  EXPECT_THROW((void)prepare_topology(missing_option), spec_error);

  run_config missing_file;
  missing_file.scenario = trace_spec(temp_path("absent.trc"));
  EXPECT_THROW((void)prepare_topology(missing_file), trace_error);

  // Unknown options are rejected by the registry whitelist.
  EXPECT_THROW((void)scenario_registry().resolve(
                   spec("trace").with_option("bogus", "1")),
               spec_error);
}

TEST(TracePipelineTest, ImporterEndToEnd) {
  const std::string text_path = temp_path("loss.txt");
  {
    std::ofstream out(text_path);
    out << "# TopoConfluence-style per-path loss summary\n"
           "ntom-path-loss 1\n"
           "paths 3 intervals 4\n"
           "0.00 0.10 0.00\n"
           "0.20 0.00 0.00\n"
           "0.00 0.00 0.00\n"
           "0.90 0.90 0.00\n";
  }
  const std::string trc_path = temp_path("imported.trc");
  import_options options;
  options.loss_threshold = 0.05;
  const import_result result =
      import_path_loss_file(text_path, trc_path, options);
  EXPECT_EQ(result.paths, 3u);
  EXPECT_EQ(result.intervals, 4u);
  EXPECT_EQ(result.congested_observations, 4u);

  const trace_reader reader(trc_path);
  EXPECT_FALSE(reader.has_truth());
  EXPECT_EQ(reader.topology_ptr()->num_paths(), 3u);
  EXPECT_EQ(reader.topology_ptr()->num_links(), 3u);

  run_config replay;
  replay.scenario = trace_spec(trc_path);
  const run_artifacts run = prepare_run(replay);
  ASSERT_EQ(run.data.intervals, 4u);
  // Interval 0: path 1 congested (loss 0.10 > 0.05).
  EXPECT_TRUE(run.data.congested_paths_at(0).test(1));
  EXPECT_FALSE(run.data.congested_paths_at(0).test(0));
  // Interval 3: paths 0 and 1 congested.
  EXPECT_TRUE(run.data.congested_paths_at(3).test(0));
  EXPECT_TRUE(run.data.congested_paths_at(3).test(1));
  EXPECT_FALSE(run.data.congested_paths_at(3).test(2));

  // The degenerate topology supports the estimator pipeline.
  const auto rows = estimator_eval({"sparsity"})(replay, run);
  EXPECT_TRUE(has_metric(rows, "explained_rate"));

  std::remove(text_path.c_str());
  std::remove(trc_path.c_str());
}

TEST(TracePipelineTest, ImporterRejectsMalformedInput) {
  const std::string out = temp_path("bad_import.trc");
  const auto import_text = [&](const std::string& text) {
    std::istringstream in(text);
    return import_path_loss(in, out);
  };
  EXPECT_THROW((void)import_text("nonsense\n"), trace_error);
  EXPECT_THROW((void)import_text("ntom-path-loss 1\npaths 0 intervals 2\n"),
               trace_error);
  EXPECT_THROW(
      (void)import_text("ntom-path-loss 1\npaths 2 intervals 1\n0.5\n"),
      trace_error);
  EXPECT_THROW((void)import_text(
                   "ntom-path-loss 1\npaths 2 intervals 1\n0.5 2.0\n"),
               trace_error);
  EXPECT_THROW((void)import_text(
                   "ntom-path-loss 1\npaths 1 intervals 1\n0.5 junk\n"),
               trace_error);
  EXPECT_THROW((void)import_text("ntom-path-loss 1\npaths 1 intervals 2\n"
                                 "0.5\n"),
               trace_error);
  std::remove(out.c_str());
}

}  // namespace
}  // namespace ntom
