// Corpus tooling and v2 format features end to end: stat/merge/split/
// manifest (trace/corpus.hpp), range and sharded replay, mmap vs
// buffered reads, masked (probe-budget) capture -> replay bit-identity
// at every capture granularity, hand-built version-1 files still
// reading, and a corrupted CIDX entry failing loudly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ntom/exp/evals.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/io/topology_io.hpp"
#include "ntom/trace/corpus.hpp"
#include "ntom/trace/trace_reader.hpp"
#include "ntom/trace/trace_writer.hpp"
#include "ntom/util/crc32.hpp"

namespace ntom {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

run_config small_config(std::size_t intervals = 60, std::uint64_t seed = 17) {
  run_config config;
  config.topo = "toy";
  config.topo_seed = 3;
  config.scenario = "random_congestion";
  config.scenario_opts.seed = 11;
  config.sim.intervals = intervals;
  config.sim.packets_per_path = 50;
  config.sim.seed = seed;
  return config;
}

void capture(const run_config& config, const std::string& path,
             std::size_t chunk, bool store_truth = true) {
  run_config streaming = config;
  streaming.stream.chunk_intervals = chunk;
  const run_artifacts run = prepare_topology(streaming);
  trace_writer_options options;
  options.store_truth = store_truth;
  options.provenance = "corpus-test";
  trace_writer writer(path, options);
  stream_experiment(run, streaming, writer);
}

/// Gathers every interval's observation and truth rows.
struct collect_sink final : measurement_sink {
  void consume(const measurement_chunk& chunk) override {
    for (std::size_t i = 0; i < chunk.count; ++i) {
      obs.push_back(chunk.congested_paths_at(i));
      truth.push_back(chunk.true_links_at(i));
    }
  }
  std::vector<bitvec> obs;
  std::vector<bitvec> truth;
};

collect_sink collect_all(const trace_reader& reader, std::size_t chunk = 32) {
  collect_sink sink;
  reader.stream(sink, chunk);
  return sink;
}

bool rows_identical(const std::vector<measurement>& a,
                    const std::vector<measurement>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].series != b[i].series || a[i].metric != b[i].metric ||
        a[i].value != b[i].value) {
      return false;
    }
  }
  return true;
}

std::vector<unsigned char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path,
                 const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t get_u64_at(const std::vector<unsigned char>& b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{b[at + static_cast<std::size_t>(i)]} << (8 * i);
  }
  return v;
}

void put_u64_at(std::vector<unsigned char>& b, std::size_t at,
                std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b[at + static_cast<std::size_t>(i)] = static_cast<unsigned char>(v >> (8 * i));
  }
}

void put_u32_at(std::vector<unsigned char>& b, std::size_t at,
                std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b[at + static_cast<std::size_t>(i)] = static_cast<unsigned char>(v >> (8 * i));
  }
}

TEST(CorpusTest, StatReportsSizesAndCodecs) {
  const std::string path = temp_path("stat.trc");
  capture(small_config(60), path, 16);

  const corpus_file_stat stat = stat_trace_file(path);
  EXPECT_EQ(stat.version, 2u);
  EXPECT_TRUE(stat.has_truth);
  EXPECT_FALSE(stat.has_mask);
  EXPECT_TRUE(stat.has_index);
  EXPECT_EQ(stat.intervals, 60u);
  EXPECT_EQ(stat.frames, 4u);
  EXPECT_EQ(stat.file_bytes, std::filesystem::file_size(path));
  EXPECT_GT(stat.encoded_bytes, 0u);
  EXPECT_LE(stat.encoded_bytes, stat.decoded_bytes);
  EXPECT_GE(stat.compression(), 1.0);
  EXPECT_GT(stat.bytes_per_interval(), 0.0);

  // Two planes per frame (obs + truth), each counted under one codec.
  std::uint64_t sections = 0;
  std::uint64_t encoded = 0;
  for (const corpus_codec_totals& c : stat.by_codec) {
    sections += c.sections;
    encoded += c.encoded_bytes;
  }
  EXPECT_EQ(sections, stat.frames * 2);
  EXPECT_EQ(encoded, stat.encoded_bytes);
  std::remove(path.c_str());
}

TEST(CorpusTest, MergeConcatenatesAndRebasesIntervals) {
  const std::string a_path = temp_path("merge_a.trc");
  const std::string b_path = temp_path("merge_b.trc");
  const std::string out = temp_path("merged.trc");
  capture(small_config(60, 17), a_path, 16);
  capture(small_config(28, 99), b_path, 7);

  EXPECT_EQ(merge_traces({a_path, b_path}, out), 88u);
  const trace_reader merged(out);
  EXPECT_EQ(merged.intervals(), 88u);
  EXPECT_TRUE(merged.has_truth());
  EXPECT_TRUE(merged.provenance().rfind("corpus merge:", 0) == 0);

  const collect_sink a = collect_all(trace_reader(a_path));
  const collect_sink b = collect_all(trace_reader(b_path));
  const collect_sink m = collect_all(merged);
  ASSERT_EQ(m.obs.size(), 88u);
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_TRUE(m.obs[i] == a.obs[i]) << i;
    EXPECT_TRUE(m.truth[i] == a.truth[i]) << i;
  }
  for (std::size_t i = 0; i < 28; ++i) {
    EXPECT_TRUE(m.obs[60 + i] == b.obs[i]) << i;
    EXPECT_TRUE(m.truth[60 + i] == b.truth[i]) << i;
  }
  for (const std::string& p : {a_path, b_path, out}) std::remove(p.c_str());
}

TEST(CorpusTest, MergeRejectsMismatchedInputs) {
  const std::string out = temp_path("bad_merge.trc");
  EXPECT_THROW((void)merge_traces({}, out), trace_error);

  const std::string toy = temp_path("merge_toy.trc");
  const std::string brite = temp_path("merge_brite.trc");
  capture(small_config(20), toy, 16);
  run_config other = small_config(20);
  other.topo = "brite,n=10,hosts=30,paths=60";
  capture(other, brite, 16);
  EXPECT_THROW((void)merge_traces({toy, brite}, out), trace_error);

  // Truth-bearing + truth-less must not silently zero the truth plane.
  const std::string truthless = temp_path("merge_truthless.trc");
  capture(small_config(20), truthless, 16, /*store_truth=*/false);
  EXPECT_THROW((void)merge_traces({toy, truthless}, out), trace_error);

  for (const std::string& p : {toy, brite, truthless}) std::remove(p.c_str());
  std::remove(out.c_str());
}

TEST(CorpusTest, SplitPartitionsAtFrameBoundaries) {
  const std::string path = temp_path("split.trc");
  capture(small_config(60), path, 16);  // frames of 16, 16, 16, 12.
  const collect_sink whole = collect_all(trace_reader(path));

  const std::vector<std::string> parts = split_trace(path, 2);
  ASSERT_EQ(parts.size(), 2u);
  std::size_t at = 0;
  for (const std::string& part : parts) {
    const trace_reader reader(part);
    EXPECT_GE(reader.frames(), 1u);
    const collect_sink rows = collect_all(reader);
    for (std::size_t i = 0; i < rows.obs.size(); ++i, ++at) {
      ASSERT_LT(at, whole.obs.size());
      EXPECT_TRUE(rows.obs[i] == whole.obs[at]);
      EXPECT_TRUE(rows.truth[i] == whole.truth[at]);
    }
  }
  EXPECT_EQ(at, 60u);

  // One part round-trips; more parts than frames (or zero) is an error.
  const std::vector<std::string> one = split_trace(path, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(trace_reader(one[0]).intervals(), 60u);
  EXPECT_THROW((void)split_trace(path, 5), trace_error);
  EXPECT_THROW((void)split_trace(path, 0), trace_error);

  std::remove(path.c_str());
  for (const std::string& p : parts) std::remove(p.c_str());
  std::remove(one[0].c_str());
}

TEST(CorpusTest, ManifestListsEveryTraceInTheDirectory) {
  const std::string dir = temp_path("manifest_corpus");
  std::filesystem::create_directories(dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::filesystem::remove(entry.path());
  }
  capture(small_config(30, 1), dir + "/run_a.trc", 16);
  capture(small_config(20, 2), dir + "/run_b.trc", 16);
  {
    std::ofstream noise(dir + "/notes.txt");
    noise << "not a trace";
  }

  const std::vector<std::string> files = list_corpus_files(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_TRUE(files[0].ends_with("run_a.trc"));
  EXPECT_TRUE(files[1].ends_with("run_b.trc"));

  const std::vector<corpus_file_stat> stats = write_corpus_manifest(dir);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].intervals + stats[1].intervals, 50u);

  std::ifstream in(dir + "/corpus.json");
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("run_a.trc"), std::string::npos);
  EXPECT_NE(json.find("run_b.trc"), std::string::npos);
  EXPECT_NE(json.find("total_intervals"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CorpusTest, StreamRangeMatchesTheFullReplay) {
  const std::string path = temp_path("range.trc");
  capture(small_config(60), path, 16);
  const trace_reader reader(path);
  const collect_sink whole = collect_all(reader);

  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, 60}, {20, 25}, {59, 1}, {16, 16}, {5, 40}, {10, 0}};
  for (const auto& [first, count] : ranges) {
    collect_sink sink;
    reader.stream_range(sink, 13, first, count);
    ASSERT_EQ(sink.obs.size(), count) << first << "+" << count;
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(sink.obs[i] == whole.obs[first + i]);
      EXPECT_TRUE(sink.truth[i] == whole.truth[first + i]);
    }
  }
  collect_sink sink;
  EXPECT_THROW(reader.stream_range(sink, 13, 50, 20), trace_error);
  EXPECT_THROW(reader.stream_range(sink, 13, 61, 1), trace_error);

  // The same windows through the scenario options (a sharded grid arm).
  run_config window;
  window.scenario = spec("trace")
                        .with_option("file", path)
                        .with_option("first", "20")
                        .with_option("count", "25");
  const run_artifacts run = prepare_run(window);
  ASSERT_EQ(run.data.intervals, 25u);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_TRUE(run.data.congested_paths_at(i) == whole.obs[20 + i]);
  }
  run_config bad;
  bad.scenario = spec("trace")
                     .with_option("file", path)
                     .with_option("first", "55")
                     .with_option("count", "20");
  EXPECT_THROW((void)prepare_run(bad), spec_error);
  std::remove(path.c_str());
}

TEST(CorpusTest, MmapAndBufferedReadsAgree) {
  const std::string path = temp_path("mmap.trc");
  capture(small_config(60), path, 16);

  const trace_reader auto_reader(path);  // mmap where the platform allows.
  trace_reader_options buffered_options;
  buffered_options.io = trace_reader_options::io_mode::buffered;
  const trace_reader buffered(path, buffered_options);
  EXPECT_FALSE(buffered.mapped());

  const collect_sink a = collect_all(auto_reader, 32);
  const collect_sink b = collect_all(buffered, 17);
  ASSERT_EQ(a.obs.size(), b.obs.size());
  for (std::size_t i = 0; i < a.obs.size(); ++i) {
    EXPECT_TRUE(a.obs[i] == b.obs[i]);
    EXPECT_TRUE(a.truth[i] == b.truth[i]);
  }
  if (auto_reader.mapped()) {
    trace_reader_options force;
    force.io = trace_reader_options::io_mode::mmap;
    EXPECT_TRUE(trace_reader(path, force).mapped());
  }
  std::remove(path.c_str());
}

TEST(CorpusTest, CorruptedIndexEntryFailsTheScan) {
  const std::string path = temp_path("bad_index.trc");
  capture(small_config(60), path, 16);
  std::vector<unsigned char> bytes = read_bytes(path);

  // v2 trailer: "TRLR" + frames u64 + intervals u64 + index offset u64 +
  // CRC u32 = 32 bytes; CIDX body: magic + count u64 + 24-byte entries.
  const auto index_offset =
      static_cast<std::size_t>(get_u64_at(bytes, bytes.size() - 12));
  ASSERT_EQ(std::string(bytes.begin() + static_cast<std::ptrdiff_t>(index_offset),
                        bytes.begin() + static_cast<std::ptrdiff_t>(index_offset) + 4),
            "CIDX");
  const std::uint64_t n = get_u64_at(bytes, index_offset + 4);
  ASSERT_EQ(n, 4u);

  // Nudge the first entry's offset into the frame's interior and re-seal
  // the index CRC — the attacker controls the checksums too.
  put_u64_at(bytes, index_offset + 12, get_u64_at(bytes, index_offset + 12) + 4);
  const std::size_t body = 8 + static_cast<std::size_t>(n) * 24;
  put_u32_at(bytes, index_offset + 4 + body,
             crc32(bytes.data() + index_offset + 4, body));
  write_bytes(path, bytes);

  const trace_reader reader(path);  // structural checks alone can't see it.
  EXPECT_THROW(reader.scan_frames([](const trace_frame_stat&) {}), trace_error);
  EXPECT_THROW((void)stat_trace_file(path), trace_error);
  // A range seek through the poisoned entry lands mid-frame and fails.
  collect_sink sink;
  EXPECT_THROW(reader.stream_range(sink, 13, 5, 5), trace_error);
  std::remove(path.c_str());
}

TEST(CorpusTest, MaskedCaptureReplaysBitIdenticallyAtEveryGranularity) {
  // Probe-budget capture (tentpole acceptance): a policy-masked run
  // captured at chunk sizes 1/7/64/256 must replay with bit-identical
  // estimator rows — the v2 mask plane preserves which paths each
  // chunk observed.
  const batch_eval_fn eval =
      estimator_eval({"sparsity", "bayes-indep"},
                     {.boolean_metrics = true, .link_error_metrics = false});
  for (const std::size_t chunk : {1ul, 7ul, 64ul, 256ul}) {
    run_config config;
    config.topo = "brite,n=10,hosts=30,paths=60";
    config.topo_seed = 3;
    config.scenario = "random_congestion";
    config.scenario_opts.seed = 11;
    config.sim.intervals = 60;
    config.sim.seed = 17;
    config.plan.policy = "uniform,frac=0.5";
    config.stream.chunk_intervals = chunk;
    const std::string path =
        temp_path("masked_" + std::to_string(chunk) + ".trc");
    config.capture.path = path;
    config.reconcile();
    ASSERT_TRUE(config.stream.enabled);

    const run_artifacts live = prepare_topology(config);
    const auto live_rows = eval(config, live);  // capture rides the fit pass.

    const trace_reader reader(path);
    EXPECT_TRUE(reader.has_mask());
    EXPECT_TRUE(reader.has_truth());
    EXPECT_EQ(reader.intervals(), 60u);

    // Replay granularity is pinned to the stored frames for masked
    // files, so any requested chunk size yields the same rows.
    for (const std::size_t replay_chunk : {13ul, 256ul}) {
      run_config replay;
      replay.scenario = spec("trace").with_option("file", path);
      replay.stream.chunk_intervals = replay_chunk;
      const run_artifacts replayed = prepare_run(replay);
      EXPECT_TRUE(rows_identical(live_rows, eval(replay, replayed)))
          << "capture chunk " << chunk << ", replay chunk " << replay_chunk;
    }

    // Masked corpora go through merge, too (mask propagates).
    const std::string doubled = temp_path("masked_merge.trc");
    EXPECT_EQ(merge_traces({path, path}, doubled), 120u);
    EXPECT_TRUE(trace_reader(doubled).has_mask());
    std::remove(doubled.c_str());
    std::remove(path.c_str());
  }
}

TEST(CorpusTest, VersionOneFilesStillRead) {
  // Hand-built v1 file (the v2 writer no longer emits one): header,
  // two raw interleaved-row frames, 24-byte trailer — the layout the
  // seed shipped. It must replay, range, and stat unchanged.
  const run_config config = small_config(3);
  const run_artifacts arts = prepare_topology(config);
  const std::size_t paths = arts.topo().num_paths();
  const std::size_t links = arts.topo().num_links();
  const std::size_t stride_p = (paths + 63) / 64;
  const std::size_t stride_l = (links + 63) / 64;
  std::ostringstream topo_text;
  save_topology(arts.topo(), topo_text);
  const std::string topo = topo_text.str();

  std::vector<unsigned char> bytes;
  const auto push_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<unsigned char>(v >> (8 * i)));
    }
  };
  const auto push_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<unsigned char>(v >> (8 * i)));
    }
  };
  const auto push_bytes = [&](const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    bytes.insert(bytes.end(), c, c + n);
  };

  push_bytes(trace_magic, sizeof(trace_magic));
  push_u32(1);                     // version
  push_u32(trace_flag_has_truth);  // flags
  push_u64(3);                     // intervals
  push_u64(paths);
  push_u64(links);
  const std::string prov = "v1-test";
  push_u32(static_cast<std::uint32_t>(prov.size()));
  push_bytes(prov.data(), prov.size());
  push_u32(static_cast<std::uint32_t>(topo.size()));
  push_bytes(topo.data(), topo.size());
  push_u32(crc32(bytes.data(), bytes.size()));  // header CRC

  // obs row i sets path bit i; truth row i sets link bit 2i mod links.
  const auto push_frame = [&](std::uint64_t first, std::uint64_t count) {
    push_bytes(trace_frame_magic, sizeof(trace_frame_magic));
    const std::size_t head_at = bytes.size();
    push_u64(first);
    push_u64(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t interval = first + i;
      for (std::size_t w = 0; w < stride_p; ++w) {
        push_u64(w == (interval % paths) / 64
                     ? std::uint64_t{1} << ((interval % paths) % 64)
                     : 0);
      }
      for (std::size_t w = 0; w < stride_l; ++w) {
        const std::uint64_t bit = (2 * interval) % links;
        push_u64(w == bit / 64 ? std::uint64_t{1} << (bit % 64) : 0);
      }
    }
    push_u32(crc32(bytes.data() + head_at, bytes.size() - head_at));
  };
  push_frame(0, 2);
  push_frame(2, 1);

  push_bytes(trace_trailer_magic, sizeof(trace_trailer_magic));
  const std::size_t totals_at = bytes.size();
  push_u64(2);  // frames
  push_u64(3);  // intervals
  push_u32(crc32(bytes.data() + totals_at, 16));

  const std::string path = temp_path("handmade_v1.trc");
  write_bytes(path, bytes);

  const trace_reader reader(path);
  EXPECT_EQ(reader.version(), 1u);
  EXPECT_FALSE(reader.has_index());
  EXPECT_TRUE(reader.has_truth());
  EXPECT_FALSE(reader.has_mask());
  EXPECT_EQ(reader.intervals(), 3u);
  EXPECT_EQ(reader.frames(), 2u);
  EXPECT_EQ(reader.provenance(), "v1-test");

  const collect_sink rows = collect_all(reader, 2);
  ASSERT_EQ(rows.obs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rows.obs[i].count(), 1u);
    EXPECT_TRUE(rows.obs[i].test(i % paths));
    EXPECT_EQ(rows.truth[i].count(), 1u);
    EXPECT_TRUE(rows.truth[i].test((2 * i) % links));
  }

  // Range replay walks v1 frames sequentially (no index to seek by).
  collect_sink window;
  reader.stream_range(window, 4, 1, 2);
  ASSERT_EQ(window.obs.size(), 2u);
  EXPECT_TRUE(window.obs[0] == rows.obs[1]);
  EXPECT_TRUE(window.obs[1] == rows.obs[2]);

  const corpus_file_stat stat = stat_trace_file(path);
  EXPECT_EQ(stat.version, 1u);
  EXPECT_EQ(stat.frames, 2u);
  EXPECT_FALSE(stat.has_index);
  EXPECT_EQ(stat.by_codec[trace_codec::codec_raw].sections, 4u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ntom
