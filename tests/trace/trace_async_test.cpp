// Async capture contract: the background double-buffered writer must
// produce byte-for-byte the file the sync path writes, and writer-side
// I/O failures must surface on the capture thread as trace_error — not
// vanish into the background thread.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "ntom/exp/runner.hpp"
#include "ntom/trace/trace_reader.hpp"
#include "ntom/trace/trace_writer.hpp"

namespace ntom {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

run_config small_config(std::size_t intervals = 60) {
  run_config config;
  config.topo = "toy";
  config.topo_seed = 3;
  config.scenario = "random_congestion";
  config.scenario_opts.seed = 11;
  config.sim.intervals = intervals;
  config.sim.packets_per_path = 50;
  config.sim.seed = 17;
  return config;
}

/// Captures the config's stream to `path` in the requested mode.
void capture(const run_config& config, const std::string& path, bool async,
             std::size_t chunk, bool store_truth = true) {
  run_config streaming = config;
  streaming.stream.chunk_intervals = chunk;
  const run_artifacts run = prepare_topology(streaming);
  trace_writer_options options;
  options.store_truth = store_truth;
  options.async = async;
  options.provenance = "async-test";
  trace_writer writer(path, options);
  stream_experiment(run, streaming, writer);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(AsyncTraceWriterTest, AsyncFileIsByteIdenticalToSync) {
  const run_config config = small_config(70);
  for (const std::size_t chunk : {1ul, 7ul, 16ul, 256ul}) {
    const std::string sync_path = temp_path("cap_sync.trc");
    const std::string async_path = temp_path("cap_async.trc");
    capture(config, sync_path, /*async=*/false, chunk);
    capture(config, async_path, /*async=*/true, chunk);
    const std::string sync_bytes = slurp(sync_path);
    const std::string async_bytes = slurp(async_path);
    EXPECT_FALSE(sync_bytes.empty());
    EXPECT_TRUE(sync_bytes == async_bytes) << "chunk=" << chunk;
    std::remove(sync_path.c_str());
    std::remove(async_path.c_str());
  }
}

TEST(AsyncTraceWriterTest, TruthStrippedAsyncMatchesSync) {
  const run_config config = small_config(40);
  const std::string sync_path = temp_path("strip_sync.trc");
  const std::string async_path = temp_path("strip_async.trc");
  capture(config, sync_path, /*async=*/false, 16, /*store_truth=*/false);
  capture(config, async_path, /*async=*/true, 16, /*store_truth=*/false);
  EXPECT_TRUE(slurp(sync_path) == slurp(async_path));
  std::remove(sync_path.c_str());
  std::remove(async_path.c_str());
}

TEST(AsyncTraceWriterTest, AsyncCaptureRoundTripsThroughReader) {
  // Many tiny frames keep both queue slots churning; the reader then
  // verifies every frame CRC and the trailer.
  const run_config config = small_config(200);
  const std::string path = temp_path("soak_async.trc");
  capture(config, path, /*async=*/true, 1);
  const trace_reader reader(path);
  EXPECT_EQ(reader.intervals(), 200u);
  EXPECT_EQ(reader.frames(), 200u);
  struct discard final : measurement_sink {
    void consume(const measurement_chunk&) override {}
  } sink;
  reader.stream(sink, 32);
  std::remove(path.c_str());
}

bool dev_full_available() {
  std::ofstream probe("/dev/full", std::ios::binary);
  if (!probe.is_open()) return false;
  probe.put('x');
  probe.flush();
  return probe.fail();  // ENOSPC on every flush — the fixture we need.
}

TEST(AsyncTraceWriterTest, WriteFailureSurfacesAsTraceErrorBothModes) {
  if (!dev_full_available()) {
    GTEST_SKIP() << "/dev/full not available on this platform";
  }
  // The header stays in the stream buffer (begin() does not flush), so
  // the device error hits at whichever buffer drain reaches the device
  // first — a write_frame state check mid-capture for large streams, or
  // end()'s flush for one this small. The sync path throws on the
  // calling thread; the async path latches in the writer thread and
  // rethrows from a later consume() or from end(). Either way the
  // capture pass observes a trace_error.
  const run_config config = small_config(40);
  for (const bool async : {false, true}) {
    EXPECT_THROW(capture(config, "/dev/full", async, 8), trace_error)
        << "async=" << async;
  }
}

TEST(AsyncTraceWriterTest, AbandonedCaptureJoinsCleanly) {
  // Destroying an async writer without end() must join the background
  // thread without throwing or leaving the queue stuck; the file is
  // simply incomplete.
  const run_config config = small_config(30);
  const std::string path = temp_path("abandoned.trc");
  {
    const run_artifacts run = prepare_topology(config);
    trace_writer writer(path, {});
    writer.begin(run.topo(), config.sim.intervals);
    // No frames, no end(): destructor path only.
  }
  EXPECT_THROW(trace_reader reader(path), trace_error);  // no trailer
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ntom
