// Plane codec unit tests (trace/codec.hpp): every codec round-trips
// every plane shape bit-identically, negotiation never loses to raw,
// and hostile payloads — truncated varints, overrunning run lengths,
// out-of-range or non-increasing sparse indices, trailing bytes,
// unknown ops and ids — throw trace_error instead of corrupting memory.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "ntom/trace/codec.hpp"
#include "ntom/trace/trace_format.hpp"
#include "ntom/util/bit_matrix.hpp"

namespace ntom {
namespace {

namespace tc = trace_codec;

// LEB128, matching trace_wire::put_varint — for hand-crafting payloads.
void put_varint(std::vector<unsigned char>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<unsigned char>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<unsigned char>(v));
}

bit_matrix random_plane(std::size_t rows, std::size_t cols, double density,
                        std::uint32_t seed) {
  bit_matrix m(rows, cols);
  std::mt19937 rng(seed);
  std::bernoulli_distribution bit(density);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (bit(rng)) m.set(r, c);
    }
  }
  return m;
}

// Bursty rows: a path stays congested for a run of intervals — the
// pattern the transposed codecs were built for.
bit_matrix bursty_plane(std::size_t rows, std::size_t cols) {
  bit_matrix m(rows, cols);
  for (std::size_t c = 0; c < cols; c += 3) {
    const std::size_t start = (c * 7) % rows;
    const std::size_t len = 1 + (c % 11);
    for (std::size_t i = 0; i < len && start + i < rows; ++i) {
      m.set(start + i, c);
    }
  }
  return m;
}

bit_matrix full_plane(std::size_t rows, std::size_t cols) {
  bit_matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m.set(r, c);
  }
  return m;
}

bit_matrix decode_plane(std::uint8_t id,
                        const std::vector<unsigned char>& payload,
                        std::size_t rows, std::size_t cols) {
  bit_matrix out(rows, cols);
  tc::decode(id, payload.data(), payload.size(), out);
  return out;
}

void expect_round_trip(std::uint8_t id, const bit_matrix& plane) {
  std::vector<unsigned char> payload;
  tc::encode(id, plane, payload);
  EXPECT_TRUE(decode_plane(id, payload, plane.rows(), plane.cols()) == plane)
      << tc::codec_name(id) << " " << plane.rows() << "x" << plane.cols();
}

TEST(CodecTest, EveryCodecRoundTripsEveryShape) {
  // Shapes cross word boundaries (63/64/65/130 cols), include the 1-row
  // mask-plane case and a single column; densities span empty -> full.
  const bit_matrix planes[] = {
      bit_matrix(4, 63),                     // empty
      full_plane(4, 63),                     // full
      full_plane(1, 64),                     // full single row (mask)
      random_plane(1, 100, 0.3, 1),          // partial mask row
      random_plane(7, 65, 0.05, 2),          // sparse
      random_plane(16, 64, 0.5, 3),          // dense, word-aligned
      random_plane(256, 130, 0.02, 4),       // tall sparse
      bursty_plane(97, 60),                  // transposed-run friendly
      random_plane(5, 1, 0.5, 5),            // single column
      [] {                                   // single bit in the corner
        bit_matrix m(64, 64);
        m.set(63, 63);
        return m;
      }(),
  };
  for (const bit_matrix& plane : planes) {
    for (std::uint8_t id = 0; id < tc::codec_count; ++id) {
      expect_round_trip(id, plane);
    }
  }
}

TEST(CodecTest, NegotiationPicksAValidCodecAndNeverLosesToRaw) {
  const bit_matrix planes[] = {
      bit_matrix(32, 60), random_plane(32, 60, 0.03, 7),
      random_plane(32, 60, 0.5, 8), bursty_plane(128, 60),
      full_plane(32, 60)};
  for (const bit_matrix& plane : planes) {
    std::vector<unsigned char> payload;
    const std::uint8_t id = tc::encode_best(plane, payload);
    ASSERT_LT(id, tc::codec_count);
    const std::size_t raw_bytes = 8 * plane.rows() * plane.word_stride();
    EXPECT_LE(payload.size(), raw_bytes) << tc::codec_name(id);
    if (id == tc::codec_raw) EXPECT_EQ(payload.size(), raw_bytes);
    EXPECT_TRUE(decode_plane(id, payload, plane.rows(), plane.cols()) == plane)
        << tc::codec_name(id);
  }
  // negotiate = false always stores raw.
  std::vector<unsigned char> raw;
  EXPECT_EQ(tc::encode_best(bursty_plane(128, 60), raw, false), tc::codec_raw);
}

TEST(CodecTest, SparsePlanesBeatRawSubstantially) {
  // The bench gate demands >= 4x on realistic corpora; at the codec
  // level a 2% plane must compress well past that.
  const bit_matrix plane = random_plane(256, 60, 0.02, 11);
  std::vector<unsigned char> payload;
  (void)tc::encode_best(plane, payload);
  const std::size_t raw_bytes = 8 * plane.rows() * plane.word_stride();
  EXPECT_LT(payload.size() * 4, raw_bytes);
}

TEST(CodecTest, DecodedTailsAreAlwaysClean) {
  // A hostile raw payload with every bit set must not leak bits beyond
  // cols into the decoded plane (downstream popcounts assume clean
  // tails).
  const std::size_t rows = 3, cols = 5;
  const bit_matrix probe(rows, cols);
  const std::vector<unsigned char> all_ones(
      8 * rows * probe.word_stride(), 0xFF);
  bit_matrix out(rows, cols);
  tc::decode(tc::codec_raw, all_ones.data(), all_ones.size(), out);
  EXPECT_EQ(out.count(), rows * cols);
}

TEST(CodecTest, RejectsUnknownCodecIds) {
  const bit_matrix plane(2, 10);
  std::vector<unsigned char> payload;
  EXPECT_THROW(tc::encode(tc::codec_count, plane, payload), trace_error);
  EXPECT_THROW(decode_plane(17, {0x00, 0x01}, 2, 10), trace_error);
}

TEST(CodecTest, RawRejectsWrongPayloadSize) {
  EXPECT_THROW(decode_plane(tc::codec_raw, std::vector<unsigned char>(7), 1,
                            64),
               trace_error);
  EXPECT_THROW(decode_plane(tc::codec_raw, std::vector<unsigned char>(16), 1,
                            64),
               trace_error);
}

TEST(CodecTest, RleRejectsHostileRuns) {
  const std::size_t rows = 2, cols = 64;  // plane = 2 words.
  const auto reject = [&](std::vector<unsigned char> payload) {
    for (const std::uint8_t id : {tc::codec_rle, tc::codec_xor_rle}) {
      EXPECT_THROW(decode_plane(id, payload, rows, cols), trace_error)
          << tc::codec_name(id);
    }
  };
  // Zero-run overrunning the plane (and a genuinely huge declared run —
  // the allocation-bomb shape).
  {
    std::vector<unsigned char> p = {0x00};
    put_varint(p, 3);
    reject(p);
  }
  {
    std::vector<unsigned char> p = {0x00};
    put_varint(p, std::uint64_t{1} << 40);
    reject(p);
  }
  // Run length zero is malformed.
  {
    std::vector<unsigned char> p = {0x00};
    put_varint(p, 0);
    reject(p);
  }
  // Truncated varint: continuation bit with no terminator.
  reject({0x00, 0x80});
  // Repeat op with a truncated word.
  {
    std::vector<unsigned char> p = {0x01};
    put_varint(p, 2);
    p.insert(p.end(), {0xAA, 0xBB});  // 2 of 8 word bytes.
    reject(p);
  }
  // Literal run declaring more words than the payload holds.
  {
    std::vector<unsigned char> p = {0x02};
    put_varint(p, 2);
    p.resize(p.size() + 8, 0xCC);  // one word, two declared.
    reject(p);
  }
  // Unknown op tag.
  {
    std::vector<unsigned char> p = {0x7F};
    put_varint(p, 1);
    reject(p);
  }
  // Payload that decodes to too few words (one zero word of two).
  {
    std::vector<unsigned char> p = {0x00};
    put_varint(p, 1);
    reject(p);
  }
}

TEST(CodecTest, SparseRejectsHostileIndexLists) {
  const std::size_t rows = 4, cols = 10;  // 40 bits.
  const auto reject = [&](const std::vector<unsigned char>& payload) {
    for (const std::uint8_t id : {tc::codec_sparse, tc::codec_t_sparse}) {
      EXPECT_THROW(decode_plane(id, payload, rows, cols), trace_error)
          << tc::codec_name(id);
    }
  };
  // Count exceeding the plane's bits.
  {
    std::vector<unsigned char> p;
    put_varint(p, 41);
    reject(p);
  }
  // First index out of range.
  {
    std::vector<unsigned char> p;
    put_varint(p, 1);
    put_varint(p, 40);
    reject(p);
  }
  // Delta zero: indices must strictly increase.
  {
    std::vector<unsigned char> p;
    put_varint(p, 2);
    put_varint(p, 5);
    put_varint(p, 0);
    reject(p);
  }
  // Delta running past the plane (also exercises the overflow guard:
  // idx + delta computed without wrapping).
  {
    std::vector<unsigned char> p;
    put_varint(p, 2);
    put_varint(p, 5);
    put_varint(p, ~std::uint64_t{0} - 3);
    reject(p);
  }
  // Truncated list: count says two, payload holds one index.
  {
    std::vector<unsigned char> p;
    put_varint(p, 2);
    put_varint(p, 5);
    reject(p);
  }
  // Trailing bytes after the declared list.
  {
    std::vector<unsigned char> p;
    put_varint(p, 1);
    put_varint(p, 5);
    p.push_back(0x00);
    reject(p);
  }
}

}  // namespace
}  // namespace ntom
