#include "ntom/graph/digraph.hpp"

#include <gtest/gtest.h>

namespace ntom {
namespace {

TEST(DigraphTest, AddVerticesAndEdges) {
  digraph g(3);
  EXPECT_EQ(g.vertex_count(), 3u);
  const auto e0 = g.add_edge(0, 1);
  const auto e1 = g.add_edge(1, 2);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.edge(e0).from, 0u);
  EXPECT_EQ(g.edge(e0).to, 1u);
  EXPECT_EQ(g.edge(e1).to, 2u);
}

TEST(DigraphTest, AddVertexGrows) {
  digraph g;
  EXPECT_EQ(g.add_vertex(), 0u);
  EXPECT_EQ(g.add_vertex(), 1u);
  EXPECT_EQ(g.vertex_count(), 2u);
}

TEST(DigraphTest, BidirectionalEdgeIds) {
  digraph g(2);
  const auto forward = g.add_bidirectional_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.edge(forward).from, 0u);
  EXPECT_EQ(g.edge(forward + 1).from, 1u);  // reverse edge is next id.
}

TEST(DigraphTest, HasEdgeIsDirectional) {
  digraph g(2);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(DigraphTest, OutEdgesAndDegree) {
  digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_EQ(g.out_edges(0)[1].to, 2u);
}

TEST(DigraphTest, ShortestPathTrivial) {
  digraph g(2);
  const auto path = g.shortest_path(0, 0);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

TEST(DigraphTest, ShortestPathLine) {
  digraph g(4);
  const auto e01 = g.add_edge(0, 1);
  const auto e12 = g.add_edge(1, 2);
  const auto e23 = g.add_edge(2, 3);
  const auto path = g.shortest_path(0, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<std::uint32_t>{e01, e12, e23}));
}

TEST(DigraphTest, ShortestPathPrefersFewerHops) {
  digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto direct = g.add_edge(0, 3);
  const auto path = g.shortest_path(0, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<std::uint32_t>{direct}));
}

TEST(DigraphTest, ShortestPathUnreachable) {
  digraph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.shortest_path(0, 2).has_value());
  // Directionality matters.
  EXPECT_FALSE(g.shortest_path(1, 0).has_value());
}

TEST(DigraphTest, ReachableFrom) {
  digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto reach = g.reachable_from(0);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[2]);
  EXPECT_FALSE(reach[3]);
}

TEST(DigraphTest, EdgePathVertices) {
  digraph g(3);
  const auto e01 = g.add_edge(0, 1);
  const auto e12 = g.add_edge(1, 2);
  const auto vertices = edge_path_vertices(g, {e01, e12});
  EXPECT_EQ(vertices, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_TRUE(edge_path_vertices(g, {}).empty());
}

TEST(DigraphTest, ShortestPathEdgesAreConsistent) {
  // The returned edge ids must chain: to(e_i) == from(e_{i+1}).
  digraph g(6);
  g.add_bidirectional_edge(0, 1);
  g.add_bidirectional_edge(1, 2);
  g.add_bidirectional_edge(2, 5);
  g.add_bidirectional_edge(0, 3);
  g.add_bidirectional_edge(3, 4);
  g.add_bidirectional_edge(4, 5);
  const auto path = g.shortest_path(0, 5);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    EXPECT_EQ(g.edge((*path)[i]).to, g.edge((*path)[i + 1]).from);
  }
  EXPECT_EQ(g.edge(path->front()).from, 0u);
  EXPECT_EQ(g.edge(path->back()).to, 5u);
}

}  // namespace
}  // namespace ntom
