#include "ntom/graph/conditions.hpp"

#include <gtest/gtest.h>

#include "ntom/topogen/brite.hpp"
#include "ntom/topogen/sparse.hpp"
#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

TEST(IdentifiabilityTest, ToyTopologySatisfiesCondition1) {
  // In Fig. 1 all four links have distinct path coverages.
  const topology t = topogen::make_toy(topogen::toy_case::case1);
  const auto report = check_identifiability(t);
  EXPECT_TRUE(report.holds);
  EXPECT_TRUE(report.violating_pairs.empty());
}

TEST(IdentifiabilityTest, DetectsIndistinguishableLinks) {
  // Two links in series on a single path share the same coverage.
  topology t(2);
  t.add_link({.as_number = 0, .router_links = {0}, .edge = false});
  t.add_link({.as_number = 0, .router_links = {1}, .edge = false});
  t.add_path({0, 1});
  t.finalize();
  const auto report = check_identifiability(t);
  EXPECT_FALSE(report.holds);
  ASSERT_EQ(report.violating_pairs.size(), 1u);
  EXPECT_EQ(report.violating_pairs[0].first, 0u);
  EXPECT_EQ(report.violating_pairs[0].second, 1u);
}

TEST(IdentifiabilityTest, UncoveredLinksIgnored) {
  topology t(3);
  t.add_link({.as_number = 0, .router_links = {0}, .edge = false});
  t.add_link({.as_number = 0, .router_links = {1}, .edge = false});  // uncovered
  t.add_link({.as_number = 0, .router_links = {2}, .edge = false});  // uncovered
  t.add_path({0});
  t.finalize();
  // The two uncovered links have identical (empty) coverage but are not
  // violations — they are unobservable.
  EXPECT_TRUE(check_identifiability(t).holds);
}

TEST(WellFormedTest, ToyPathsAreWellFormed) {
  EXPECT_TRUE(paths_well_formed(topogen::make_toy(topogen::toy_case::case1)));
}

TEST(SparsityReportTest, ToyStatistics) {
  const topology t = topogen::make_toy(topogen::toy_case::case1);
  const auto report = measure_sparsity(t);
  EXPECT_EQ(report.covered_links, 4u);
  // Paths per link: e1:2, e2:1, e3:2, e4:1 -> mean 1.5.
  EXPECT_DOUBLE_EQ(report.mean_paths_per_link, 1.5);
  EXPECT_DOUBLE_EQ(report.mean_links_per_path, 2.0);
  // Overlapping pairs: (p1,p2) via e1, (p2,p3) via e3; (p1,p3) disjoint.
  EXPECT_NEAR(report.path_overlap_fraction, 2.0 / 3.0, 1e-12);
}

TEST(SparsityReportTest, SparseTopologyIsSparserThanBrite) {
  // The property the whole §3.2 "Sparse Topology" scenario rests on:
  // traceroute-derived views have far less path criss-crossing per link
  // than the dense Brite-like graphs (the system-rank driver). The raw
  // pairwise overlap fraction is dominated by the shared near-source
  // trunk — real traceroute sets share first hops too — so the
  // per-link coverage is the honest metric.
  topogen::brite_params bp;
  bp.seed = 5;
  topogen::sparse_params sp;
  sp.seed = 5;
  const auto brite = topogen::generate_brite(bp);
  const auto sparse = topogen::generate_sparse(sp);
  const auto brite_report = measure_sparsity(brite);
  const auto sparse_report = measure_sparsity(sparse);
  EXPECT_LT(sparse_report.mean_paths_per_link,
            0.7 * brite_report.mean_paths_per_link);
  // Sparse paths are longer (hierarchy depth) — more unknowns per
  // equation, another rank killer.
  EXPECT_GT(sparse_report.mean_links_per_path,
            brite_report.mean_links_per_path);
}

}  // namespace
}  // namespace ntom
