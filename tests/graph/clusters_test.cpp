#include "ntom/graph/clusters.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "ntom/topogen/brite.hpp"
#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using topogen::make_toy;
using topogen::toy_case;
using topogen::toy_e1;
using topogen::toy_e2;
using topogen::toy_e3;
using topogen::toy_e4;

TEST(AsClustersTest, ToyClustersAscendingByAs) {
  // Case 1: AS0 = {e1}, AS1 = {e2, e3}, AS2 = {e4} — all covered.
  const topology t = make_toy(toy_case::case1);
  const auto clusters = as_clusters(t, 1);
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters[0].as_number, 0u);
  EXPECT_EQ(clusters[0].links, (std::vector<link_id>{toy_e1}));
  EXPECT_EQ(clusters[1].as_number, 1u);
  EXPECT_EQ(clusters[1].links, (std::vector<link_id>{toy_e2, toy_e3}));
  EXPECT_EQ(clusters[2].as_number, 2u);
  EXPECT_EQ(clusters[2].links, (std::vector<link_id>{toy_e4}));
}

TEST(AsClustersTest, MinGroupFiltersSingletonAses) {
  const topology t = make_toy(toy_case::case1);
  const auto pairs = as_clusters(t, 2);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].as_number, 1u);
  EXPECT_TRUE(as_clusters(t, 3).empty());
}

TEST(AsClustersTest, MembersAreDeduplicatedRouterLinks) {
  // e2 and e3 share router link 4 in Case 1; the AS1 cluster must list
  // it exactly once, and every member exactly once overall.
  const topology t = make_toy(toy_case::case1);
  const auto clusters = as_clusters(t, 1);
  for (const as_cluster& c : clusters) {
    std::unordered_set<router_link_id> seen;
    for (const router_link_id r : c.members) {
      EXPECT_TRUE(seen.insert(r).second)
          << "router link " << r << " duplicated in AS " << c.as_number;
    }
  }
  const as_cluster& as1 = clusters[1];
  EXPECT_EQ(std::count(as1.members.begin(), as1.members.end(),
                       static_cast<router_link_id>(4)),
            1);
}

TEST(AsClustersTest, UncoveredLinksExcluded) {
  // AS0 holds a covered and an uncovered link; AS1 holds only an
  // uncovered link. The uncovered links vanish, and AS1 with them.
  topology t(3);
  t.add_link({.as_number = 0, .router_links = {0}, .edge = false});
  t.add_link({.as_number = 0, .router_links = {1}, .edge = false});
  t.add_link({.as_number = 1, .router_links = {2}, .edge = false});
  t.add_path({0});
  t.finalize();

  const auto clusters = as_clusters(t, 1);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].as_number, 0u);
  EXPECT_EQ(clusters[0].links, (std::vector<link_id>{0}));
  EXPECT_EQ(clusters[0].members, (std::vector<router_link_id>{0}));
}

TEST(AsClustersTest, DisconnectedAsesBothReported) {
  // Two ASes with no shared paths or router links: the clustering is a
  // per-AS scan, so disconnection changes nothing.
  topology t(4);
  t.add_link({.as_number = 0, .router_links = {0}, .edge = false});
  t.add_link({.as_number = 0, .router_links = {1}, .edge = false});
  t.add_link({.as_number = 1, .router_links = {2}, .edge = false});
  t.add_link({.as_number = 1, .router_links = {3}, .edge = false});
  t.add_path({0, 1});
  t.add_path({2, 3});
  t.finalize();

  const auto clusters = as_clusters(t, 2);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].links, (std::vector<link_id>{0, 1}));
  EXPECT_EQ(clusters[1].links, (std::vector<link_id>{2, 3}));
}

TEST(AsClustersTest, MatchesInlineSrlgCandidateScan) {
  // The helper was hoisted out of build_srlg; this is the reference
  // loop scenario.cpp used to run inline. Equality here is the
  // bit-identity proof for the SRLG scenario's candidate groups.
  topogen::brite_params p;
  p.seed = 11;
  const topology t = topogen::generate_brite(p);
  for (const std::size_t min_group : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
    std::vector<as_cluster> reference;
    for (as_id a = 0; a < t.num_ases(); ++a) {
      as_cluster c;
      c.as_number = a;
      std::unordered_set<router_link_id> seen;
      bitvec in_as = t.links_in_as(a);
      in_as &= t.covered_links();
      in_as.for_each([&](std::size_t le) {
        const auto e = static_cast<link_id>(le);
        c.links.push_back(e);
        for (const router_link_id r : t.link(e).router_links) {
          if (seen.insert(r).second) c.members.push_back(r);
        }
      });
      if (c.links.size() >= min_group && !c.members.empty()) {
        reference.push_back(std::move(c));
      }
    }

    const auto hoisted = as_clusters(t, min_group);
    ASSERT_EQ(hoisted.size(), reference.size()) << "min_group=" << min_group;
    for (std::size_t i = 0; i < hoisted.size(); ++i) {
      EXPECT_EQ(hoisted[i].as_number, reference[i].as_number);
      EXPECT_EQ(hoisted[i].links, reference[i].links);
      EXPECT_EQ(hoisted[i].members, reference[i].members);
    }
  }
}

using edge_list = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Components as a canonical set-of-sets, ignoring emission order.
std::set<std::vector<std::uint32_t>> component_sets(const bicomp_result& r) {
  return {r.components.begin(), r.components.end()};
}

TEST(BicompTest, TriangleWithPendantEdge) {
  const edge_list edges = {{0, 1}, {0, 2}, {1, 2}, {2, 3}};
  const bicomp_result r = biconnected_components(4, edges);
  EXPECT_EQ(component_sets(r),
            (std::set<std::vector<std::uint32_t>>{{0, 1, 2}, {2, 3}}));
  EXPECT_EQ(r.articulation, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(r.vertex_components[2].size(), 2u);
  EXPECT_EQ(r.vertex_components[0].size(), 1u);
}

TEST(BicompTest, TwoTrianglesJoinedByBridge) {
  const edge_list edges = {{0, 1}, {1, 2}, {2, 0},
                           {3, 4}, {4, 5}, {5, 3}, {2, 3}};
  const bicomp_result r = biconnected_components(6, edges);
  EXPECT_EQ(component_sets(r), (std::set<std::vector<std::uint32_t>>{
                                   {0, 1, 2}, {2, 3}, {3, 4, 5}}));
  EXPECT_EQ(r.articulation, (std::vector<std::uint32_t>{2, 3}));
}

TEST(BicompTest, CycleIsOneBlock) {
  const edge_list edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};
  const bicomp_result r = biconnected_components(5, edges);
  ASSERT_EQ(r.components.size(), 1u);
  EXPECT_EQ(r.components[0], (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(r.articulation.empty());
}

TEST(BicompTest, ParallelEdgesFormOneBlock) {
  // Two parallel edges are a length-2 cycle: biconnected, not a cut.
  const edge_list edges = {{0, 1}, {0, 1}};
  const bicomp_result r = biconnected_components(2, edges);
  ASSERT_EQ(r.components.size(), 1u);
  EXPECT_EQ(r.components[0], (std::vector<std::uint32_t>{0, 1}));
  EXPECT_TRUE(r.articulation.empty());
}

TEST(BicompTest, SelfLoopsIgnored) {
  const edge_list edges = {{0, 0}, {0, 1}};
  const bicomp_result r = biconnected_components(2, edges);
  EXPECT_EQ(component_sets(r),
            (std::set<std::vector<std::uint32_t>>{{0, 1}}));
  EXPECT_TRUE(r.articulation.empty());
}

TEST(BicompTest, IsolatedVertexIsSingleton) {
  const edge_list edges = {{1, 2}};
  const bicomp_result r = biconnected_components(3, edges);
  EXPECT_EQ(component_sets(r),
            (std::set<std::vector<std::uint32_t>>{{0}, {1, 2}}));
  EXPECT_TRUE(r.articulation.empty());
  EXPECT_EQ(r.vertex_components[0].size(), 1u);
}

TEST(BicompTest, DisconnectedBlocksIndependent) {
  const edge_list edges = {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}};
  const bicomp_result r = biconnected_components(6, edges);
  EXPECT_EQ(component_sets(r), (std::set<std::vector<std::uint32_t>>{
                                   {0, 1, 2}, {3, 4, 5}}));
  EXPECT_TRUE(r.articulation.empty());
}

TEST(BicompTest, VertexComponentsIndexConsistent) {
  const edge_list edges = {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4},
                           {4, 5}, {5, 3}, {6, 6}};
  const bicomp_result r = biconnected_components(7, edges);
  // Every membership listed by the index appears in the component, and
  // every component member is indexed.
  for (std::uint32_t v = 0; v < 7; ++v) {
    for (const std::uint32_t c : r.vertex_components[v]) {
      const auto& comp = r.components[c];
      EXPECT_TRUE(std::find(comp.begin(), comp.end(), v) != comp.end());
    }
  }
  for (std::uint32_t c = 0; c < r.components.size(); ++c) {
    for (const std::uint32_t v : r.components[c]) {
      const auto& idx = r.vertex_components[v];
      EXPECT_TRUE(std::find(idx.begin(), idx.end(), c) != idx.end());
    }
  }
  // Articulation = exactly the vertices in >= 2 blocks.
  for (std::uint32_t v = 0; v < 7; ++v) {
    const bool cut = std::find(r.articulation.begin(), r.articulation.end(),
                               v) != r.articulation.end();
    EXPECT_EQ(cut, r.vertex_components[v].size() >= 2);
  }
}

TEST(BicompTest, LargePathGraphDoesNotOverflow) {
  // 200k-vertex path: every edge is its own block and every interior
  // vertex articulates. The iterative DFS must survive it (a recursive
  // Hopcroft–Tarjan would blow the stack here).
  constexpr std::uint32_t n = 200000;
  edge_list edges;
  edges.reserve(n - 1);
  for (std::uint32_t v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  const bicomp_result r = biconnected_components(n, edges);
  EXPECT_EQ(r.components.size(), n - 1);
  EXPECT_EQ(r.articulation.size(), n - 2);
}

}  // namespace
}  // namespace ntom
