#include "ntom/graph/topology.hpp"

#include <gtest/gtest.h>

#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using topogen::make_toy;
using topogen::toy_case;
using topogen::toy_e1;
using topogen::toy_e2;
using topogen::toy_e3;
using topogen::toy_e4;
using topogen::toy_p1;
using topogen::toy_p2;
using topogen::toy_p3;

TEST(TopologyTest, ToyDimensions) {
  const topology t = make_toy(toy_case::case1);
  EXPECT_TRUE(t.finalized());
  EXPECT_EQ(t.num_links(), 4u);
  EXPECT_EQ(t.num_paths(), 3u);
  EXPECT_EQ(t.num_ases(), 3u);
}

TEST(TopologyTest, PathsThroughLink) {
  const topology t = make_toy(toy_case::case1);
  EXPECT_EQ(t.paths_through(toy_e1).to_indices(),
            (std::vector<std::size_t>{toy_p1, toy_p2}));
  EXPECT_EQ(t.paths_through(toy_e2).to_indices(),
            (std::vector<std::size_t>{toy_p1}));
  EXPECT_EQ(t.paths_through(toy_e3).to_indices(),
            (std::vector<std::size_t>{toy_p2, toy_p3}));
  EXPECT_EQ(t.paths_through(toy_e4).to_indices(),
            (std::vector<std::size_t>{toy_p3}));
}

TEST(TopologyTest, PathCoverageFunctionMatchesPaper) {
  // §5.2: Paths({e1,e2}) = {p1,p2}, Paths({e1,e3}) = {p1,p2,p3}.
  const topology t = make_toy(toy_case::case1);
  bitvec e12(t.num_links());
  e12.set(toy_e1);
  e12.set(toy_e2);
  EXPECT_EQ(t.paths_of_links(e12).to_indices(),
            (std::vector<std::size_t>{toy_p1, toy_p2}));

  bitvec e13(t.num_links());
  e13.set(toy_e1);
  e13.set(toy_e3);
  EXPECT_EQ(t.paths_of_links(e13).to_indices(),
            (std::vector<std::size_t>{toy_p1, toy_p2, toy_p3}));
}

TEST(TopologyTest, LinkCoverageFunctionMatchesPaper) {
  // §5.2: Links({p1}) = {e1,e2}, Links({p1,p2}) = {e1,e2,e3}.
  const topology t = make_toy(toy_case::case1);
  bitvec p1(t.num_paths());
  p1.set(toy_p1);
  EXPECT_EQ(t.links_of_paths(p1).to_indices(),
            (std::vector<std::size_t>{toy_e1, toy_e2}));

  bitvec p12(t.num_paths());
  p12.set(toy_p1);
  p12.set(toy_p2);
  EXPECT_EQ(t.links_of_paths(p12).to_indices(),
            (std::vector<std::size_t>{toy_e1, toy_e2, toy_e3}));
}

TEST(TopologyTest, CorrelationSetsPerAs) {
  const topology t = make_toy(toy_case::case1);
  EXPECT_EQ(t.links_in_as(0).to_indices(), (std::vector<std::size_t>{toy_e1}));
  EXPECT_EQ(t.links_in_as(1).to_indices(),
            (std::vector<std::size_t>{toy_e2, toy_e3}));
  EXPECT_EQ(t.links_in_as(2).to_indices(), (std::vector<std::size_t>{toy_e4}));

  const topology t2 = make_toy(toy_case::case2);
  EXPECT_EQ(t2.links_in_as(0).to_indices(),
            (std::vector<std::size_t>{toy_e1, toy_e4}));
  EXPECT_EQ(t2.links_in_as(1).to_indices(),
            (std::vector<std::size_t>{toy_e2, toy_e3}));
}

TEST(TopologyTest, AllToyLinksCovered) {
  const topology t = make_toy(toy_case::case1);
  EXPECT_EQ(t.covered_links().count(), 4u);
}

TEST(TopologyTest, RouterLinkSharingDefinesCorrelation) {
  const topology t = make_toy(toy_case::case1);
  EXPECT_TRUE(t.links_share_router_link(toy_e2, toy_e3));
  EXPECT_FALSE(t.links_share_router_link(toy_e1, toy_e2));
  EXPECT_FALSE(t.links_share_router_link(toy_e1, toy_e4));

  const topology t2 = make_toy(toy_case::case2);
  EXPECT_TRUE(t2.links_share_router_link(toy_e1, toy_e4));
  EXPECT_TRUE(t2.links_share_router_link(toy_e2, toy_e3));
}

TEST(TopologyTest, LinksOnRouterLinkIndex) {
  const topology t = make_toy(toy_case::case1);
  // Router link 4 is shared by e2 and e3 in Case 1.
  const auto& users = t.links_on_router_link(4);
  EXPECT_EQ(users, (std::vector<link_id>{toy_e2, toy_e3}));
  // Private router link 0 belongs to e1 only.
  EXPECT_EQ(t.links_on_router_link(0), (std::vector<link_id>{toy_e1}));
}

TEST(TopologyTest, UncoveredLinkExcluded) {
  topology t(2);
  t.add_link({.as_number = 0, .router_links = {0}, .edge = false});
  t.add_link({.as_number = 0, .router_links = {1}, .edge = false});
  t.add_path({0});
  t.finalize();
  EXPECT_TRUE(t.covered_links().test(0));
  EXPECT_FALSE(t.covered_links().test(1));
}

TEST(TopologyTest, DescribeMentionsDimensions) {
  const topology t = make_toy(toy_case::case1);
  const std::string s = t.describe();
  EXPECT_NE(s.find("|E*|=4"), std::string::npos);
  EXPECT_NE(s.find("|P*|=3"), std::string::npos);
}

TEST(PathTest, LengthAndMembership) {
  const topology t = make_toy(toy_case::case1);
  const path& p1 = t.get_path(toy_p1);
  EXPECT_EQ(p1.length(), 2u);
  EXPECT_TRUE(p1.traverses(toy_e1));
  EXPECT_TRUE(p1.traverses(toy_e2));
  EXPECT_FALSE(p1.traverses(toy_e3));
}

}  // namespace
}  // namespace ntom
