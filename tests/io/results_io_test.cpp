#include "ntom/io/results_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using namespace topogen;

probability_estimates make_estimates(const topology& t) {
  bitvec potcong(t.num_links());
  for (link_id e = 0; e < t.num_links(); ++e) potcong.set(e);
  subset_catalog catalog = subset_catalog::build(t, potcong);
  probability_estimates est(t, std::move(catalog), potcong);
  bitvec e1(t.num_links());
  e1.set(toy_e1);
  est.set_good_probability(est.catalog().find(e1), 0.7, true);
  return est;
}

TEST(ResultsIoTest, LinkCsvShape) {
  const topology t = make_toy(toy_case::case1);
  const auto est = make_estimates(t);
  std::stringstream out;
  export_link_estimates_csv(t, est, out);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line,
            "link,as,edge,potentially_congested,estimated,"
            "congestion_probability");
  std::size_t rows = 0;
  while (std::getline(out, line)) ++rows;
  EXPECT_EQ(rows, t.num_links());
}

TEST(ResultsIoTest, LinkCsvValues) {
  const topology t = make_toy(toy_case::case1);
  const auto est = make_estimates(t);
  std::stringstream out;
  export_link_estimates_csv(t, est, out);
  const std::string text = out.str();
  // e1 (link 0, AS 0): estimated, P = 0.3.
  EXPECT_NE(text.find("0,0,1,1,1,0.3"), std::string::npos);
}

TEST(ResultsIoTest, SubsetCsvShape) {
  const topology t = make_toy(toy_case::case1);
  const auto est = make_estimates(t);
  std::stringstream out;
  export_subset_estimates_csv(t, est, out);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line,
            "subset,as,size,identifiable,good_probability,"
            "congestion_probability");
  std::size_t rows = 0;
  bool found_pair = false;
  while (std::getline(out, line)) {
    ++rows;
    if (line.find("\"{1,2}\"") != std::string::npos) found_pair = true;
  }
  EXPECT_EQ(rows, est.num_subsets());
  EXPECT_TRUE(found_pair);  // the {e2,e3} subset.
}

TEST(ResultsIoTest, UnidentifiableSubsetHasEmptyCongestion) {
  const topology t = make_toy(toy_case::case1);
  const auto est = make_estimates(t);
  std::stringstream out;
  export_subset_estimates_csv(t, est, out);
  std::string line;
  std::getline(out, line);  // header.
  bool saw_trailing_empty = false;
  while (std::getline(out, line)) {
    if (!line.empty() && line.back() == ',') saw_trailing_empty = true;
  }
  // At least one subset (unidentifiable) has no congestion estimate.
  EXPECT_TRUE(saw_trailing_empty);
}

}  // namespace
}  // namespace ntom
