#include "ntom/io/topology_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ntom/topogen/brite.hpp"
#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

void expect_topologies_equal(const topology& a, const topology& b) {
  ASSERT_EQ(a.num_links(), b.num_links());
  ASSERT_EQ(a.num_paths(), b.num_paths());
  ASSERT_EQ(a.num_router_links(), b.num_router_links());
  ASSERT_EQ(a.num_ases(), b.num_ases());
  for (link_id e = 0; e < a.num_links(); ++e) {
    EXPECT_EQ(a.link(e).as_number, b.link(e).as_number);
    EXPECT_EQ(a.link(e).edge, b.link(e).edge);
    EXPECT_EQ(a.link(e).router_links, b.link(e).router_links);
  }
  for (path_id p = 0; p < a.num_paths(); ++p) {
    EXPECT_EQ(a.get_path(p).links(), b.get_path(p).links());
  }
}

TEST(TopologyIoTest, ToyRoundTrip) {
  const topology original = topogen::make_toy(topogen::toy_case::case1);
  std::stringstream buffer;
  save_topology(original, buffer);
  const topology loaded = load_topology(buffer);
  expect_topologies_equal(original, loaded);
}

TEST(TopologyIoTest, BriteRoundTrip) {
  topogen::brite_params p;
  p.seed = 13;
  const topology original = topogen::generate_brite(p);
  std::stringstream buffer;
  save_topology(original, buffer);
  const topology loaded = load_topology(buffer);
  expect_topologies_equal(original, loaded);
}

TEST(TopologyIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ntom_topo_test.txt";
  const topology original = topogen::make_toy(topogen::toy_case::case2);
  save_topology_file(original, path);
  const topology loaded = load_topology_file(path);
  expect_topologies_equal(original, loaded);
  std::remove(path.c_str());
}

TEST(TopologyIoTest, RejectsBadMagic) {
  std::stringstream buffer("not-a-topology 1\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsWrongVersion) {
  std::stringstream buffer("ntom-topology 999\nrouter_links 0\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsOutOfRangeRouterLink) {
  std::stringstream buffer("ntom-topology 1\nrouter_links 2\nlink 0 0 5\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsPathWithUnknownLink) {
  std::stringstream buffer(
      "ntom-topology 1\nrouter_links 1\nlink 0 0 0\npath 0 7\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsEmptyPath) {
  std::stringstream buffer(
      "ntom-topology 1\nrouter_links 1\nlink 0 0 0\npath\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsUnknownRecord) {
  std::stringstream buffer("ntom-topology 1\nrouter_links 1\nbogus 1 2\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, CannotOpenMissingFile) {
  EXPECT_THROW(load_topology_file("/nonexistent/nope.txt"),
               std::runtime_error);
}

TEST(TopologyIoTest, RejectsTrailingGarbage) {
  // After the version.
  std::stringstream header(
      "ntom-topology 1 junk\nrouter_links 1\nlink 0 0 0\npath 0\n");
  EXPECT_THROW(load_topology(header), std::runtime_error);
  // On the router_links line.
  std::stringstream counts(
      "ntom-topology 1\nrouter_links 1 extra\nlink 0 0 0\npath 0\n");
  EXPECT_THROW(load_topology(counts), std::runtime_error);
  // On a link record.
  std::stringstream link(
      "ntom-topology 1\nrouter_links 1\nlink 0 0 0 junk\npath 0\n");
  EXPECT_THROW(load_topology(link), std::runtime_error);
  // On a path record.
  std::stringstream path(
      "ntom-topology 1\nrouter_links 1\nlink 0 0 0\npath 0 junk\n");
  EXPECT_THROW(load_topology(path), std::runtime_error);
}

TEST(TopologyIoTest, ToleratesTrailingWhitespaceAndCrlf) {
  // Trailing spaces and CRLF line endings (files edited on Windows)
  // are not garbage.
  std::stringstream crlf(
      "ntom-topology 1\r\nrouter_links 1 \r\nlink 0 0 0\r\npath 0 \r\n");
  const topology t = load_topology(crlf);
  EXPECT_EQ(t.num_links(), 1u);
  EXPECT_EQ(t.num_paths(), 1u);
}

TEST(TopologyIoTest, ToleratesUtf8BomAndCommentLines) {
  // A UTF-8 BOM before the magic and '#' comments / blank lines between
  // records: the quirks hand-maintained and Windows-edited dataset
  // files actually carry.
  std::stringstream quirky(
      "\xEF\xBB\xBF"
      "# exported topology\n"
      "ntom-topology 1\n"
      "\n"
      "router_links 2\n"
      "# the links\n"
      "link 0 0 0\n"
      "link 1 0 1\n"
      "path 0 1\n");
  const topology t = load_topology(quirky);
  EXPECT_EQ(t.num_links(), 2u);
  EXPECT_EQ(t.num_paths(), 1u);
  EXPECT_EQ(t.num_router_links(), 2u);
}

TEST(TopologyIoTest, BomRoundTripMatchesPlainLoad) {
  // BOM + CRLF + comments change nothing about the parsed structure.
  const topology original = topogen::make_toy(topogen::toy_case::case1);
  std::stringstream plain;
  save_topology(original, plain);
  std::string text = plain.str();
  // Re-wrap the canonical bytes in the hostile encodings.
  std::string quirky = "\xEF\xBB\xBF# header comment\r\n";
  for (const char c : text) {
    if (c == '\n') {
      quirky += "\r\n";
    } else {
      quirky += c;
    }
  }
  std::stringstream in(quirky);
  const topology loaded = load_topology(in);
  expect_topologies_equal(original, loaded);
}

TEST(TopologyIoTest, RejectsTruncatedBom) {
  // A file starting with 0xEF that is not a BOM is not a topology.
  std::stringstream bad("\xEF\x01\x02ntom-topology 1\nrouter_links 1\n");
  EXPECT_THROW(load_topology(bad), std::runtime_error);
}

TEST(TopologyIoTest, RejectsDuplicateAndMisorderedSections) {
  // A second header mid-file (two concatenated topologies).
  std::stringstream dup_header(
      "ntom-topology 1\nrouter_links 1\nlink 0 0 0\npath 0\n"
      "ntom-topology 1\n");
  EXPECT_THROW(load_topology(dup_header), std::runtime_error);
  // A second router_links section.
  std::stringstream dup_counts(
      "ntom-topology 1\nrouter_links 1\nlink 0 0 0\nrouter_links 2\n"
      "path 0\n");
  EXPECT_THROW(load_topology(dup_counts), std::runtime_error);
  // A link record after the paths started.
  std::stringstream misordered(
      "ntom-topology 1\nrouter_links 1\nlink 0 0 0\npath 0\nlink 0 0 0\n");
  EXPECT_THROW(load_topology(misordered), std::runtime_error);
}

TEST(TopologyIoTest, RejectsShortSections) {
  // Header only — no records at all.
  std::stringstream empty("ntom-topology 1\nrouter_links 1\n");
  EXPECT_THROW(load_topology(empty), std::runtime_error);
  // Links but no paths.
  std::stringstream no_paths("ntom-topology 1\nrouter_links 1\nlink 0 0 0\n");
  EXPECT_THROW(load_topology(no_paths), std::runtime_error);
  // Truncated before router_links.
  std::stringstream no_counts("ntom-topology 1\n");
  EXPECT_THROW(load_topology(no_counts), std::runtime_error);
}

TEST(TopologyIoTest, SaveLoadSaveIsByteIdentical) {
  const topology original = topogen::make_toy(topogen::toy_case::case2);
  std::stringstream first;
  save_topology(original, first);
  const std::string first_bytes = first.str();
  std::stringstream second_in(first_bytes);
  const topology loaded = load_topology(second_in);
  std::stringstream second;
  save_topology(loaded, second);
  EXPECT_EQ(first_bytes, second.str());
}

TEST(DotExportTest, ContainsAsNodesAndEdges) {
  const topology t = topogen::make_toy(topogen::toy_case::case1);
  std::stringstream out;
  export_dot(t, out);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph ntom {"), std::string::npos);
  EXPECT_NE(dot.find("as0"), std::string::npos);
  EXPECT_NE(dot.find("as1"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
  EXPECT_NE(dot.rfind("}"), std::string::npos);
  // Labels use the DOT line-break escape, never a raw newline inside
  // the quoted label.
  EXPECT_NE(dot.find("\\n"), std::string::npos);
  EXPECT_EQ(dot.find("links\n\""), std::string::npos);
}

TEST(DotExportTest, EscapesLabelMetacharacters) {
  EXPECT_EQ(escape_dot_label("plain"), "plain");
  EXPECT_EQ(escape_dot_label("AS0\n3 links"), "AS0\\n3 links");
  EXPECT_EQ(escape_dot_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_dot_label("back\\slash"), "back\\\\slash");
}

}  // namespace
}  // namespace ntom
