#include "ntom/io/topology_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ntom/topogen/brite.hpp"
#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

void expect_topologies_equal(const topology& a, const topology& b) {
  ASSERT_EQ(a.num_links(), b.num_links());
  ASSERT_EQ(a.num_paths(), b.num_paths());
  ASSERT_EQ(a.num_router_links(), b.num_router_links());
  ASSERT_EQ(a.num_ases(), b.num_ases());
  for (link_id e = 0; e < a.num_links(); ++e) {
    EXPECT_EQ(a.link(e).as_number, b.link(e).as_number);
    EXPECT_EQ(a.link(e).edge, b.link(e).edge);
    EXPECT_EQ(a.link(e).router_links, b.link(e).router_links);
  }
  for (path_id p = 0; p < a.num_paths(); ++p) {
    EXPECT_EQ(a.get_path(p).links(), b.get_path(p).links());
  }
}

TEST(TopologyIoTest, ToyRoundTrip) {
  const topology original = topogen::make_toy(topogen::toy_case::case1);
  std::stringstream buffer;
  save_topology(original, buffer);
  const topology loaded = load_topology(buffer);
  expect_topologies_equal(original, loaded);
}

TEST(TopologyIoTest, BriteRoundTrip) {
  topogen::brite_params p;
  p.seed = 13;
  const topology original = topogen::generate_brite(p);
  std::stringstream buffer;
  save_topology(original, buffer);
  const topology loaded = load_topology(buffer);
  expect_topologies_equal(original, loaded);
}

TEST(TopologyIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ntom_topo_test.txt";
  const topology original = topogen::make_toy(topogen::toy_case::case2);
  save_topology_file(original, path);
  const topology loaded = load_topology_file(path);
  expect_topologies_equal(original, loaded);
  std::remove(path.c_str());
}

TEST(TopologyIoTest, RejectsBadMagic) {
  std::stringstream buffer("not-a-topology 1\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsWrongVersion) {
  std::stringstream buffer("ntom-topology 999\nrouter_links 0\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsOutOfRangeRouterLink) {
  std::stringstream buffer("ntom-topology 1\nrouter_links 2\nlink 0 0 5\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsPathWithUnknownLink) {
  std::stringstream buffer(
      "ntom-topology 1\nrouter_links 1\nlink 0 0 0\npath 0 7\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsEmptyPath) {
  std::stringstream buffer(
      "ntom-topology 1\nrouter_links 1\nlink 0 0 0\npath\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, RejectsUnknownRecord) {
  std::stringstream buffer("ntom-topology 1\nrouter_links 1\nbogus 1 2\n");
  EXPECT_THROW(load_topology(buffer), std::runtime_error);
}

TEST(TopologyIoTest, CannotOpenMissingFile) {
  EXPECT_THROW(load_topology_file("/nonexistent/nope.txt"),
               std::runtime_error);
}

TEST(DotExportTest, ContainsAsNodesAndEdges) {
  const topology t = topogen::make_toy(topogen::toy_case::case1);
  std::stringstream out;
  export_dot(t, out);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph ntom {"), std::string::npos);
  EXPECT_NE(dot.find("as0"), std::string::npos);
  EXPECT_NE(dot.find("as1"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
  EXPECT_NE(dot.rfind("}"), std::string::npos);
}

}  // namespace
}  // namespace ntom
