#include "ntom/exp/runner.hpp"

#include <gtest/gtest.h>

namespace ntom {
namespace {

run_config small_config() {
  run_config c;
  c.brite.num_ases = 10;
  c.brite.num_destination_hosts = 30;
  c.brite.num_paths = 50;
  c.brite.seed = 3;
  c.sparse.seed = 3;
  c.sim.intervals = 40;
  c.sim.packets_per_path = 50;
  c.scenario_opts.seed = 4;
  return c;
}

TEST(RunnerTest, PreparesBriteRun) {
  run_config c = small_config();
  const auto run = prepare_run(c);
  EXPECT_GT(run.topo.num_links(), 0u);
  EXPECT_EQ(run.data.intervals, 40u);
  EXPECT_FALSE(run.model.phase_q.empty());
}

TEST(RunnerTest, PreparesSparseRun) {
  run_config c = small_config();
  c.topo = topology_kind::sparse;
  const auto run = prepare_run(c);
  EXPECT_GT(run.topo.num_links(), 0u);
  EXPECT_GT(run.topo.num_ases(), 5u);
}

TEST(RunnerTest, ReconcileComputesPhases) {
  run_config c = small_config();
  c.scenario_opts.nonstationary = true;
  c.scenario_opts.phase_length = 7;
  c.sim.intervals = 40;
  c.reconcile();
  EXPECT_EQ(c.scenario_opts.num_phases, 6u);  // ceil(40/7).
}

TEST(RunnerTest, NonStationaryRunHasPhases) {
  run_config c = small_config();
  c.scenario_opts.nonstationary = true;
  c.scenario_opts.phase_length = 10;
  const auto run = prepare_run(c);
  EXPECT_EQ(run.model.num_phases(), 4u);
}

TEST(RunnerTest, MakeTruthUsesExperimentLength) {
  run_config c = small_config();
  const auto run = prepare_run(c);
  const ground_truth truth = run.make_truth();
  // All congestable links have probability in (0, 1].
  run.model.congestable_links.for_each([&](std::size_t e) {
    const double p = truth.link_congestion_probability(static_cast<link_id>(e));
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  });
}

TEST(RunnerTest, ScoreInferencePerfectOracle) {
  run_config c = small_config();
  const auto run = prepare_run(c);
  // A cheating "inferencer" that returns the truth scores perfectly.
  std::size_t i = 0;
  const auto metrics = score_inference(run, [&](const bitvec&) {
    return run.data.congested_links_by_interval[i++];
  });
  EXPECT_DOUBLE_EQ(metrics.detection_rate, 1.0);
  EXPECT_DOUBLE_EQ(metrics.false_positive_rate, 0.0);
}

TEST(RunnerTest, TopologyKindNames) {
  EXPECT_STREQ(topology_kind_name(topology_kind::brite), "Brite");
  EXPECT_STREQ(topology_kind_name(topology_kind::sparse), "Sparse");
}

TEST(RunnerTest, DeterministicAcrossCalls) {
  const auto a = prepare_run(small_config());
  const auto b = prepare_run(small_config());
  EXPECT_EQ(a.topo.num_links(), b.topo.num_links());
  for (std::size_t i = 0; i < a.data.intervals; ++i) {
    EXPECT_EQ(a.data.congested_links_by_interval[i],
              b.data.congested_links_by_interval[i]);
  }
}

}  // namespace
}  // namespace ntom
