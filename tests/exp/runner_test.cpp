#include "ntom/exp/runner.hpp"

#include <gtest/gtest.h>

namespace ntom {
namespace {

run_config small_config() {
  run_config c;
  c.topo = "brite,n=10,hosts=30,paths=50";
  c.topo_seed = 3;
  c.sim.intervals = 40;
  c.sim.packets_per_path = 50;
  c.scenario_opts.seed = 4;
  return c;
}

TEST(RunnerTest, PreparesBriteRun) {
  run_config c = small_config();
  const auto run = prepare_run(c);
  EXPECT_GT(run.topo().num_links(), 0u);
  EXPECT_EQ(run.data.intervals, 40u);
  EXPECT_FALSE(run.model.phase_q.empty());
}

TEST(RunnerTest, PreparesSparseRun) {
  run_config c = small_config();
  c.topo = "sparse";
  const auto run = prepare_run(c);
  EXPECT_GT(run.topo().num_links(), 0u);
  EXPECT_GT(run.topo().num_ases(), 5u);
}

TEST(RunnerTest, PreparesToyRun) {
  run_config c = small_config();
  c.topo = "toy,case=2";
  const auto run = prepare_run(c);
  EXPECT_EQ(run.topo().num_links(), 4u);
  EXPECT_EQ(run.topo().num_paths(), 3u);
}

TEST(RunnerTest, UnknownTopologyThrows) {
  run_config c = small_config();
  c.topo = "warts";
  EXPECT_THROW((void)prepare_run(c), spec_error);
}

TEST(RunnerTest, ReconcileComputesPhases) {
  run_config c = small_config();
  c.scenario_opts.nonstationary = true;
  c.scenario_opts.phase_length = 7;
  c.sim.intervals = 40;
  c.reconcile();
  EXPECT_EQ(c.scenario_opts.num_phases, 6u);  // ceil(40/7).
}

TEST(RunnerTest, ReconcileResolvesSpecOptionsAndIsIdempotent) {
  run_config c = small_config();
  c.scenario = "random_congestion,nonstationary,phase_length=8,fraction=0.2";
  c.sim.intervals = 40;
  c.reconcile();
  EXPECT_TRUE(c.scenario_opts.nonstationary);
  EXPECT_EQ(c.scenario_opts.phase_length, 8u);
  EXPECT_DOUBLE_EQ(c.scenario_opts.congestable_fraction, 0.2);
  EXPECT_EQ(c.scenario_opts.num_phases, 5u);  // ceil(40/8).
  const scenario_params once = c.scenario_opts;
  c.reconcile();
  EXPECT_EQ(c.scenario_opts.nonstationary, once.nonstationary);
  EXPECT_EQ(c.scenario_opts.phase_length, once.phase_length);
  EXPECT_EQ(c.scenario_opts.num_phases, once.num_phases);
  EXPECT_DOUBLE_EQ(c.scenario_opts.congestable_fraction,
                   once.congestable_fraction);
}

TEST(RunnerTest, NonStationaryRunHasPhases) {
  run_config c = small_config();
  c.scenario_opts.nonstationary = true;
  c.scenario_opts.phase_length = 10;
  const auto run = prepare_run(c);
  EXPECT_EQ(run.model.num_phases(), 4u);
}

TEST(RunnerTest, PrepareRunReconcilesItself) {
  // A caller who sets the nonstationarity knobs through the spec and
  // never touches reconcile() must still get enough pre-drawn phases.
  run_config c = small_config();
  c.scenario = "no_stationarity,phase_length=10";
  const auto run = prepare_run(c);
  EXPECT_EQ(run.model.num_phases(), 4u);  // ceil(40/10).
}

TEST(RunnerTest, MakeTruthUsesExperimentLength) {
  run_config c = small_config();
  const auto run = prepare_run(c);
  const ground_truth truth = run.make_truth();
  // All congestable links have probability in (0, 1].
  run.model.congestable_links.for_each([&](std::size_t e) {
    const double p = truth.link_congestion_probability(static_cast<link_id>(e));
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  });
}

TEST(RunnerTest, ScoreInferencePerfectOracle) {
  run_config c = small_config();
  const auto run = prepare_run(c);
  // A cheating "inferencer" that returns the truth scores perfectly.
  std::size_t i = 0;
  const auto metrics = score_inference(run, [&](const bitvec&) {
    return run.data.true_links_at(i++);
  });
  EXPECT_DOUBLE_EQ(metrics.detection_rate, 1.0);
  EXPECT_DOUBLE_EQ(metrics.false_positive_rate, 0.0);
}

TEST(RunnerTest, TopologyLabels) {
  EXPECT_EQ(topology_label("brite"), "Brite");
  EXPECT_EQ(topology_label("sparse,stubs=40"), "Sparse");
  EXPECT_EQ(topology_label("brite,label=MyNet"), "MyNet");
}

TEST(RunnerTest, DeterministicAcrossCalls) {
  const auto a = prepare_run(small_config());
  const auto b = prepare_run(small_config());
  EXPECT_EQ(a.topo().num_links(), b.topo().num_links());
  EXPECT_TRUE(a.data.true_links == b.data.true_links);
}

}  // namespace
}  // namespace ntom
