// The sharded grid scheduler's contract: the topology cache reuses one
// generated instance per (spec, topo_seed); sharding, caching, and
// thread count never change a single aggregate bit.
#include "ntom/exp/grid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ntom/api/experiment.hpp"
#include "ntom/exp/evals.hpp"

namespace ntom {
namespace {

experiment small_grid(bool streamed = false) {
  experiment e;
  e.with_topology("brite,n=10,hosts=30,paths=60")
      .with_scenario("random_congestion")
      .with_scenario("srlg")
      .with_scenario("gilbert")
      .with_estimators({"sparsity", "independence"})
      .replicas(2)
      .intervals(30)
      .with_streaming({streamed});
  return e;
}

void expect_reports_identical(const batch_report& a, const batch_report& b) {
  const auto ca = a.summarize();
  const auto cb = b.summarize();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].label, cb[i].label);
    EXPECT_EQ(ca[i].series, cb[i].series);
    EXPECT_EQ(ca[i].metric, cb[i].metric);
    EXPECT_EQ(ca[i].runs, cb[i].runs);
    EXPECT_EQ(ca[i].mean, cb[i].mean) << ca[i].label << "/" << ca[i].series
                                      << "/" << ca[i].metric;  // bitwise.
    EXPECT_EQ(ca[i].stddev, cb[i].stddev);
    EXPECT_EQ(ca[i].min, cb[i].min);
    EXPECT_EQ(ca[i].max, cb[i].max);
  }
  // Per-run rows too: same order, same values, run by run.
  ASSERT_EQ(a.runs().size(), b.runs().size());
  for (std::size_t r = 0; r < a.runs().size(); ++r) {
    const run_result& ra = a.runs()[r];
    const run_result& rb = b.runs()[r];
    EXPECT_EQ(ra.index, rb.index);
    EXPECT_EQ(ra.label, rb.label);
    ASSERT_EQ(ra.measurements.size(), rb.measurements.size());
    for (std::size_t m = 0; m < ra.measurements.size(); ++m) {
      EXPECT_EQ(ra.measurements[m].series, rb.measurements[m].series);
      EXPECT_EQ(ra.measurements[m].metric, rb.measurements[m].metric);
      EXPECT_EQ(ra.measurements[m].value, rb.measurements[m].value);
    }
  }
}

TEST(TopologyCacheTest, SameKeySharesOneInstance) {
  topology_cache cache;
  const auto a = cache.get("brite,n=6,hosts=10,paths=20", 5);
  const auto b = cache.get("brite,n=6,hosts=10,paths=20", 5);
  EXPECT_EQ(a.get(), b.get());  // the same generated instance.
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TopologyCacheTest, SeedAndSpecAreBothPartOfTheKey) {
  topology_cache cache;
  const auto a = cache.get("brite,n=6,hosts=10,paths=20", 5);
  const auto other_seed = cache.get("brite,n=6,hosts=10,paths=20", 6);
  const auto other_spec = cache.get("brite,n=7,hosts=10,paths=20", 5);
  EXPECT_NE(a.get(), other_seed.get());
  EXPECT_NE(a.get(), other_spec.get());
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(TopologyCacheTest, CachedInstanceEqualsRegeneration) {
  topology_cache cache;
  const auto cached = cache.get("brite,n=6,hosts=10,paths=20", 5);
  const topology fresh = make_topology("brite,n=6,hosts=10,paths=20", 5);
  EXPECT_EQ(cached->num_links(), fresh.num_links());
  EXPECT_EQ(cached->num_paths(), fresh.num_paths());
  EXPECT_EQ(cached->covered_links(), fresh.covered_links());
}

TEST(GridSchedulerTest, KnobsAndThreadsNeverChangeResults) {
  const experiment exp = small_grid();
  grid_stats reference_stats;
  const batch_report reference =
      exp.run({.threads = 1}, &reference_stats);
  ASSERT_FALSE(reference.summarize().empty());

  for (const bool cache : {true, false}) {
    for (const bool shard : {true, false}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        experiment e = small_grid();
        e.cache_topologies(cache).shard_estimators(shard);
        grid_stats stats;
        const batch_report report = e.run({.threads = threads}, &stats);
        expect_reports_identical(reference, report);
        EXPECT_EQ(stats.runs, 6u);  // 3 scenarios x 2 replicas.
        EXPECT_EQ(stats.cells, shard ? 12u : 6u);
        if (cache) {
          // One topology per replica; the scenario arms hit the cache.
          EXPECT_EQ(stats.topo_cache_misses, 2u);
          EXPECT_EQ(stats.topo_cache_hits, 4u);
        } else {
          EXPECT_EQ(stats.topo_cache_misses, 0u);
          EXPECT_EQ(stats.topo_cache_hits, 0u);
        }
      }
    }
  }
}

TEST(GridSchedulerTest, StreamedRunsStayOneCellAndMatch) {
  const experiment materialized = small_grid(false);
  const experiment streamed = small_grid(true);
  grid_stats stats;
  const batch_report a = materialized.run({.threads = 2});
  const batch_report b = streamed.run({.threads = 2}, &stats);
  // Streamed fits share one replay pass, so no estimator sharding.
  EXPECT_EQ(stats.cells, stats.runs);
  expect_reports_identical(a, b);
}

TEST(GridSchedulerTest, RunBatchRidesTheSchedulerUnchanged) {
  const experiment exp = small_grid();
  const batch_report via_grid = exp.run({.threads = 4});
  const batch_report via_batch =
      run_batch(exp.specs(), exp.eval(), {.threads = 4});
  expect_reports_identical(via_grid, via_batch);
}

TEST(GridSchedulerTest, EvalExceptionsPropagate) {
  struct throwing_eval final : cell_evaluator {
    [[nodiscard]] std::size_t shards(const run_config&) const override {
      return 2;
    }
    [[nodiscard]] std::vector<measurement> eval_cell(
        const run_config&, const run_artifacts&, void* /*run_state*/,
        std::size_t shard) const override {
      if (shard == 1) throw std::runtime_error("cell boom");
      return {};
    }
  };
  const experiment exp = small_grid();
  const throwing_eval eval;
  EXPECT_THROW((void)run_grid(exp.specs(), eval, {.threads = 4}),
               std::runtime_error);
  EXPECT_THROW((void)run_grid(exp.specs(), eval, {.threads = 1}),
               std::runtime_error);
}

TEST(GridSchedulerTest, EmptySpecsYieldEmptyReport) {
  const estimator_cells cells({"sparsity"});
  grid_stats stats;
  const batch_report report = run_grid({}, cells, {}, &stats);
  EXPECT_TRUE(report.runs().empty());
  EXPECT_EQ(stats.cells, 0u);
  EXPECT_EQ(stats.runs, 0u);
}

}  // namespace
}  // namespace ntom
