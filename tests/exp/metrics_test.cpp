#include "ntom/exp/metrics.hpp"

#include <gtest/gtest.h>

#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

bitvec links(std::size_t universe, std::initializer_list<std::size_t> ids) {
  bitvec b(universe);
  for (const auto i : ids) b.set(i);
  return b;
}

TEST(InferenceScorerTest, PerfectInference) {
  inference_scorer scorer;
  scorer.add_interval(links(4, {0, 2}), links(4, {0, 2}));
  const auto m = scorer.result();
  EXPECT_DOUBLE_EQ(m.detection_rate, 1.0);
  EXPECT_DOUBLE_EQ(m.false_positive_rate, 0.0);
  EXPECT_EQ(m.intervals_scored, 1u);
}

TEST(InferenceScorerTest, PartialDetection) {
  inference_scorer scorer;
  // Truth {0,1,2}; inferred {0,3}: detection 1/3, FP 1/2.
  scorer.add_interval(links(4, {0, 3}), links(4, {0, 1, 2}));
  const auto m = scorer.result();
  EXPECT_NEAR(m.detection_rate, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.false_positive_rate, 0.5, 1e-12);
}

TEST(InferenceScorerTest, IntervalsWithoutCongestionSkipDetection) {
  inference_scorer scorer;
  scorer.add_interval(links(4, {}), links(4, {}));  // nothing to score.
  scorer.add_interval(links(4, {1}), links(4, {1}));
  const auto m = scorer.result();
  EXPECT_EQ(m.intervals_scored, 1u);
  EXPECT_DOUBLE_EQ(m.detection_rate, 1.0);
}

TEST(InferenceScorerTest, EmptyInferenceSkipsFalsePositiveTerm) {
  inference_scorer scorer;
  // Truth has congestion but the algorithm stays silent: detection 0,
  // FP undefined for that interval.
  scorer.add_interval(links(4, {}), links(4, {0}));
  scorer.add_interval(links(4, {1}), links(4, {0}));  // FP 1/1.
  const auto m = scorer.result();
  EXPECT_DOUBLE_EQ(m.detection_rate, 0.0);
  EXPECT_DOUBLE_EQ(m.false_positive_rate, 1.0);
}

TEST(InferenceScorerTest, AveragesAcrossIntervals) {
  inference_scorer scorer;
  scorer.add_interval(links(4, {0}), links(4, {0}));        // det 1.
  scorer.add_interval(links(4, {1}), links(4, {0, 1}));     // det 0.5.
  const auto m = scorer.result();
  EXPECT_NEAR(m.detection_rate, 0.75, 1e-12);
}

TEST(MeanOfTest, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

TEST(LinkErrorsTest, ComputedOverPotcongOnly) {
  using namespace topogen;
  const topology t = make_toy(toy_case::case1);
  congestion_model model;
  model.phase_q.assign(1, std::vector<double>(t.num_router_links(), 0.0));
  model.phase_q[0][0] = 0.4;  // e1.
  const ground_truth truth(t, model, 100);

  link_estimates est;
  est.congestion.assign(t.num_links(), 0.0);
  est.estimated = bitvec(t.num_links());
  est.estimated.flip();
  est.congestion[toy_e1] = 0.3;

  bitvec potcong(t.num_links());
  potcong.set(toy_e1);
  potcong.set(toy_e2);
  const auto errors = link_absolute_errors(t, truth, est, potcong);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NEAR(errors[0], 0.1, 1e-12);  // e1: |0.4 - 0.3|.
  EXPECT_NEAR(errors[1], 0.0, 1e-12);  // e2: both 0.
}

TEST(SubsetErrorsTest, OnlyIdentifiableMultiLinkSubsets) {
  using namespace topogen;
  const topology t = make_toy(toy_case::case1);
  congestion_model model;
  model.phase_q.assign(1, std::vector<double>(t.num_router_links(), 0.0));
  model.phase_q[0][4] = 0.25;  // e2,e3 perfectly correlated.
  const ground_truth truth(t, model, 100);

  bitvec potcong(t.num_links());
  for (link_id e = 0; e < 4; ++e) potcong.set(e);
  subset_catalog catalog = subset_catalog::build(t, potcong);
  probability_estimates est(t, std::move(catalog), potcong);
  // Only {e2,e3} identifiable with g = 0.75; singletons of e2,e3 too.
  auto set_g = [&](std::initializer_list<link_id> ls, double g) {
    bitvec b(t.num_links());
    for (const auto e : ls) b.set(e);
    est.set_good_probability(est.catalog().find(b), g, true);
  };
  set_g({toy_e2}, 0.75);
  set_g({toy_e3}, 0.75);
  set_g({toy_e2, toy_e3}, 0.75);

  const auto errors = subset_absolute_errors(t, truth, est, 2);
  // Exactly one multi-link subset is identifiable: {e2,e3}.
  ASSERT_EQ(errors.size(), 1u);
  // Estimated P(both congested) = 1 - 2*0.75 + 0.75 = 0.25 = truth.
  EXPECT_NEAR(errors[0], 0.0, 1e-12);
}

}  // namespace
}  // namespace ntom
