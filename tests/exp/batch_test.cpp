#include "ntom/exp/batch.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ntom {
namespace {

run_config tiny_config() {
  run_config c;
  c.topo = "brite,n=8,routers=3,hosts=20,paths=30";
  c.sim.intervals = 20;
  c.sim.packets_per_path = 30;
  return c;
}

/// Cheap deterministic eval: statistics of the simulated data itself.
std::vector<measurement> count_eval(const run_config&,
                                    const run_artifacts& run) {
  const double congested = static_cast<double>(run.data.true_links.count());
  return {{"sim", "congested_link_intervals", congested},
          {"sim", "paths", static_cast<double>(run.topo().num_paths())}};
}

std::vector<run_spec> tiny_specs(std::size_t count) {
  std::vector<run_spec> specs;
  for (std::size_t i = 0; i < count; ++i) {
    specs.push_back({"grp" + std::to_string(i % 2), tiny_config()});
  }
  return specs;
}

TEST(DeriveRunSeedsTest, PureFunctionOfBaseSeedAndIndex) {
  const run_config a = derive_run_seeds(tiny_config(), 99, 3);
  const run_config b = derive_run_seeds(tiny_config(), 99, 3);
  EXPECT_EQ(a.topo_seed, b.topo_seed);
  EXPECT_EQ(a.scenario_opts.seed, b.scenario_opts.seed);
  EXPECT_EQ(a.sim.seed, b.sim.seed);
}

TEST(DeriveRunSeedsTest, DistinctAcrossIndicesAndSeeds) {
  const run_config a = derive_run_seeds(tiny_config(), 99, 0);
  const run_config b = derive_run_seeds(tiny_config(), 99, 1);
  const run_config c = derive_run_seeds(tiny_config(), 100, 0);
  EXPECT_NE(a.sim.seed, b.sim.seed);
  EXPECT_NE(a.sim.seed, c.sim.seed);
  EXPECT_NE(a.topo_seed, a.sim.seed);  // streams differ within a run.
}

TEST(DeriveRunSeedsTest, SharedTopoGroupSharesTopologySeedsOnly) {
  // Two scenario arms of one replica: same topology, different
  // scenario/sim draws.
  const run_config a = derive_run_seeds(tiny_config(), 99, 0, /*group=*/0);
  const run_config b = derive_run_seeds(tiny_config(), 99, 1, /*group=*/0);
  EXPECT_EQ(a.topo_seed, b.topo_seed);
  EXPECT_NE(a.scenario_opts.seed, b.scenario_opts.seed);
  EXPECT_NE(a.sim.seed, b.sim.seed);
}

TEST(BatchRunnerTest, SeedGroupGivesArmsTheSameTopology) {
  std::vector<run_spec> specs = tiny_specs(2);
  specs[0].seed_group = 0;
  specs[1].seed_group = 0;
  batch_params params;
  params.threads = 1;
  const batch_report r = run_batch(
      specs,
      [](const run_config&, const run_artifacts& run) {
        return std::vector<measurement>{
            {"sim", "links", static_cast<double>(run.topo().num_links())},
            {"sim", "paths", static_cast<double>(run.topo().num_paths())}};
      },
      params);
  EXPECT_EQ(r.runs()[0].measurements[0].value,
            r.runs()[1].measurements[0].value);
  EXPECT_EQ(r.runs()[0].measurements[1].value,
            r.runs()[1].measurements[1].value);
}

TEST(BatchRunnerTest, AggregatesAreBitIdenticalAcrossThreadCounts) {
  const std::vector<run_spec> specs = tiny_specs(8);
  batch_params serial;
  serial.threads = 1;
  batch_params parallel;
  parallel.threads = 4;

  const batch_report a = run_batch(specs, count_eval, serial);
  const batch_report b = run_batch(specs, count_eval, parallel);

  ASSERT_EQ(a.runs().size(), specs.size());
  ASSERT_EQ(b.runs().size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(a.runs()[i].index, i);
    EXPECT_EQ(b.runs()[i].index, i);
    ASSERT_EQ(a.runs()[i].measurements.size(),
              b.runs()[i].measurements.size());
    for (std::size_t m = 0; m < a.runs()[i].measurements.size(); ++m) {
      EXPECT_EQ(a.runs()[i].measurements[m].value,
                b.runs()[i].measurements[m].value);
    }
  }

  const auto sa = a.summarize();
  const auto sb = b.summarize();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].label, sb[i].label);
    EXPECT_EQ(sa[i].mean, sb[i].mean);    // bit-identical, not just close.
    EXPECT_EQ(sa[i].stddev, sb[i].stddev);
    EXPECT_EQ(sa[i].p90, sb[i].p90);
  }
}

TEST(BatchRunnerTest, DeriveSeedsOffRunsConfigVerbatim) {
  std::vector<run_spec> specs = tiny_specs(2);
  specs[0].config.sim.seed = 1234;
  specs[1].config.sim.seed = 1234;
  batch_params params;
  params.threads = 1;
  params.derive_seeds = false;
  const batch_report r = run_batch(specs, count_eval, params);
  // Same config + same seed => identical simulated data.
  EXPECT_EQ(r.runs()[0].measurements[0].value,
            r.runs()[1].measurements[0].value);
}

TEST(BatchReportTest, SummarizeComputesStatsPerCell) {
  batch_report report;
  for (std::size_t i = 0; i < 4; ++i) {
    run_result r;
    r.index = i;
    r.label = "L";
    r.measurements = {{"s", "m", static_cast<double>(i + 1)}};  // 1..4
    report.add(r);
  }
  const auto cells = report.summarize();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].runs, 4u);
  EXPECT_DOUBLE_EQ(cells[0].mean, 2.5);
  EXPECT_DOUBLE_EQ(cells[0].min, 1.0);
  EXPECT_DOUBLE_EQ(cells[0].max, 4.0);
  EXPECT_NEAR(cells[0].stddev, 1.2909944487358056, 1e-12);
  EXPECT_DOUBLE_EQ(report.mean_of("L", "s", "m"), 2.5);
  EXPECT_DOUBLE_EQ(report.mean_of("L", "s", "absent"), 0.0);
}

TEST(BatchReportTest, AddKeepsRunsSortedByIndex) {
  batch_report report;
  for (const std::size_t index : {2, 0, 3, 1}) {
    run_result r;
    r.index = index;
    report.add(r);
  }
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(report.runs()[i].index, i);
}

TEST(BatchReportTest, CsvExportWritesRunsAndSummary) {
  batch_report report;
  run_result r;
  r.index = 0;
  r.label = "L";
  r.measurements = {{"s", "m", 0.5}};
  report.add(r);

  const std::string runs_path = "batch_test_runs.csv";
  const std::string summary_path = "batch_test_summary.csv";
  report.write_runs_csv(runs_path);
  report.write_summary_csv(summary_path);

  std::ifstream runs_in(runs_path);
  std::stringstream runs_text;
  runs_text << runs_in.rdbuf();
  EXPECT_NE(runs_text.str().find("run,label,series,metric,value,seconds"),
            std::string::npos);
  EXPECT_NE(runs_text.str().find("0,L,s,m,"), std::string::npos);

  std::ifstream summary_in(summary_path);
  std::stringstream summary_text;
  summary_text << summary_in.rdbuf();
  EXPECT_NE(summary_text.str().find("label,series,metric,runs,mean"),
            std::string::npos);
  std::remove(runs_path.c_str());
  std::remove(summary_path.c_str());
}

TEST(InferenceMeasurementsTest, ExpandsBothMetrics) {
  inference_metrics m;
  m.detection_rate = 0.9;
  m.false_positive_rate = 0.1;
  const auto rows = inference_measurements("algo", m);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].series, "algo");
  EXPECT_EQ(rows[0].metric, "detection_rate");
  EXPECT_DOUBLE_EQ(rows[0].value, 0.9);
  EXPECT_EQ(rows[1].metric, "false_positive_rate");
  EXPECT_DOUBLE_EQ(rows[1].value, 0.1);
}

}  // namespace
}  // namespace ntom
