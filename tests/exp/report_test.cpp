#include "ntom/exp/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ntom {
namespace {

TEST(FormatFixedTest, Decimals) {
  EXPECT_EQ(format_fixed(0.5), "0.5000");
  EXPECT_EQ(format_fixed(0.123456, 2), "0.12");
  EXPECT_EQ(format_fixed(-1.0, 1), "-1.0");
}

TEST(TablePrinterTest, AlignsColumns) {
  table_printer table({"A", "LongHeader"});
  table.add_row({"x", "1"});
  table.add_row({"yyyy", "2"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  // Header present, underline present, rows present.
  EXPECT_NE(text.find("A"), std::string::npos);
  EXPECT_NE(text.find("LongHeader"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_NE(text.find("yyyy"), std::string::npos);
  // Each line has the same structure: 4 lines total.
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 4u);
}

TEST(TablePrinterTest, DoubleRowsFormatted) {
  table_printer table({"Scenario", "x", "y"});
  table.add_row("test", {0.25, 0.5});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("0.2500"), std::string::npos);
  EXPECT_NE(out.str().find("0.5000"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  table_printer table({"A", "B", "C"});
  table.add_row({"only"});
  std::ostringstream out;
  table.print(out);  // must not crash; missing cells are empty.
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace ntom
