#include "ntom/linalg/solve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ntom/linalg/qr.hpp"
#include "ntom/util/rng.hpp"

namespace ntom {
namespace {

TEST(UpperTriangularTest, SolvesBackSubstitution) {
  const matrix r{{2, 1}, {0, 4}};
  const auto x = solve_upper_triangular(r, {5.0, 8.0});
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[0], 1.5, 1e-12);
}

TEST(LeastSquaresTest, ExactSquareSystem) {
  const matrix a{{1, 1}, {1, -1}};
  const auto sol = solve_least_squares(a, {3.0, 1.0});
  EXPECT_EQ(sol.rank, 2u);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-10);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-10);
  EXPECT_NEAR(sol.residual_norm, 0.0, 1e-10);
  EXPECT_TRUE(sol.identifiable.test(0));
  EXPECT_TRUE(sol.identifiable.test(1));
}

TEST(LeastSquaresTest, OverdeterminedRegression) {
  // Fit y = 2x + 1 through noisy-free samples: exact recovery.
  matrix a;
  std::vector<double> b;
  for (const double x : {0.0, 1.0, 2.0, 3.0}) {
    a.append_row({x, 1.0});
    b.push_back(2.0 * x + 1.0);
  }
  const auto sol = solve_least_squares(a, b);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-10);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-10);
}

TEST(LeastSquaresTest, InconsistentSystemMinimizesResidual) {
  // x = 1 and x = 3 simultaneously: least squares gives x = 2.
  const matrix a{{1}, {1}};
  const auto sol = solve_least_squares(a, {1.0, 3.0});
  EXPECT_NEAR(sol.x[0], 2.0, 1e-10);
  EXPECT_NEAR(sol.residual_norm, std::sqrt(2.0), 1e-10);
}

TEST(LeastSquaresTest, RankDeficientFlagsUnidentifiable) {
  // x0 + x1 = 2, twice. Minimum-norm solution: x0 = x1 = 1.
  const matrix a{{1, 1}, {1, 1}};
  const auto sol = solve_least_squares(a, {2.0, 2.0});
  EXPECT_EQ(sol.rank, 1u);
  EXPECT_FALSE(sol.identifiable.test(0));
  EXPECT_FALSE(sol.identifiable.test(1));
  EXPECT_NEAR(sol.x[0], 1.0, 1e-10);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-10);
}

TEST(LeastSquaresTest, MixedIdentifiability) {
  // x0 determined; x1, x2 only in sum.
  const matrix a{{1, 0, 0}, {0, 1, 1}};
  const auto sol = solve_least_squares(a, {5.0, 4.0});
  EXPECT_TRUE(sol.identifiable.test(0));
  EXPECT_FALSE(sol.identifiable.test(1));
  EXPECT_FALSE(sol.identifiable.test(2));
  EXPECT_NEAR(sol.x[0], 5.0, 1e-10);
  // Minimum-norm splits the sum evenly.
  EXPECT_NEAR(sol.x[1], 2.0, 1e-10);
  EXPECT_NEAR(sol.x[2], 2.0, 1e-10);
}

TEST(LeastSquaresTest, EmptySystem) {
  const matrix a;
  const auto sol = solve_least_squares(a, {});
  EXPECT_TRUE(sol.x.empty());
  EXPECT_EQ(sol.rank, 0u);
}

class LeastSquaresPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeastSquaresPropertyTest, RecoversConsistentSolutions) {
  rng r(GetParam());
  const std::size_t cols = 2 + r.uniform_index(10);
  const std::size_t rows = cols + r.uniform_index(10);
  matrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      a(i, j) = r.bernoulli(0.4) ? 1.0 : 0.0;
    }
  }
  std::vector<double> x_true(cols);
  for (auto& v : x_true) v = r.uniform(-2, 2);
  const auto b = a.multiply(x_true);

  const auto sol = solve_least_squares(a, b);
  // Consistent system: residual ~ 0 whatever the rank.
  EXPECT_LT(sol.residual_norm, 1e-7);

  // Identifiable coordinates are recovered exactly; the others satisfy
  // the system but may differ from x_true.
  for (std::size_t j = 0; j < cols; ++j) {
    if (sol.identifiable.test(j)) {
      EXPECT_NEAR(sol.x[j], x_true[j], 1e-6) << "identifiable coord " << j;
    }
  }

  // Minimum-norm: the solution is orthogonal to the null space.
  const matrix n = null_space_basis(a);
  for (std::size_t j = 0; j < n.cols(); ++j) {
    EXPECT_NEAR(dot(sol.x, n.get_col(j)), 0.0, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LeastSquaresPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace ntom
