#include "ntom/linalg/qr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ntom/util/rng.hpp"

namespace ntom {
namespace {

matrix random_matrix(std::size_t rows, std::size_t cols, rng& r,
                     double density = 1.0) {
  matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (r.bernoulli(density)) m(i, j) = r.uniform(-3, 3);
    }
  }
  return m;
}

/// Applies the column permutation to A and compares with Q*R.
void expect_factorization_valid(const matrix& a, const qr_decomposition& f,
                                double tol = 1e-9) {
  const matrix qr = f.q.multiply(f.r);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(qr(i, j), a(i, f.perm[j]), tol)
          << "mismatch at (" << i << "," << j << ")";
    }
  }
  // Q orthogonal: Q^T Q = I.
  const matrix qtq = f.q.transposed().multiply(f.q);
  for (std::size_t i = 0; i < qtq.rows(); ++i) {
    for (std::size_t j = 0; j < qtq.cols(); ++j) {
      EXPECT_NEAR(qtq(i, j), i == j ? 1.0 : 0.0, tol);
    }
  }
  // R upper triangular.
  for (std::size_t i = 0; i < f.r.rows(); ++i) {
    for (std::size_t j = 0; j < std::min(i, f.r.cols()); ++j) {
      EXPECT_NEAR(f.r(i, j), 0.0, tol);
    }
  }
}

TEST(QrTest, IdentityFactorization) {
  const matrix eye = matrix::identity(4);
  const auto f = qr_factorize(eye);
  EXPECT_EQ(f.rank, 4u);
  expect_factorization_valid(eye, f);
}

TEST(QrTest, KnownRankDeficientMatrix) {
  // Row 3 = row 1 + row 2.
  const matrix a{{1, 0, 1}, {0, 1, 1}, {1, 1, 2}};
  const auto f = qr_factorize(a);
  EXPECT_EQ(f.rank, 2u);
  expect_factorization_valid(a, f);
}

TEST(QrTest, ZeroMatrixHasRankZero) {
  const matrix a(3, 3);
  EXPECT_EQ(matrix_rank(a), 0u);
}

TEST(QrTest, TallAndWideMatrices) {
  rng r(1);
  const matrix tall = random_matrix(8, 3, r);
  const matrix wide = random_matrix(3, 8, r);
  EXPECT_EQ(matrix_rank(tall), 3u);
  EXPECT_EQ(matrix_rank(wide), 3u);
  expect_factorization_valid(tall, qr_factorize(tall));
  expect_factorization_valid(wide, qr_factorize(wide));
}

TEST(QrTest, RankOfOuterProduct) {
  // u v^T always has rank 1.
  matrix a(5, 4);
  const double u[5] = {1, -2, 0.5, 3, 1};
  const double v[4] = {2, 1, -1, 0.25};
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = u[i] * v[j];
  }
  EXPECT_EQ(matrix_rank(a), 1u);
}

TEST(NullSpaceTest, FullRankHasEmptyNullSpace) {
  rng r(2);
  const matrix a = random_matrix(6, 4, r);
  EXPECT_EQ(null_space_basis(a).cols(), 0u);
}

TEST(NullSpaceTest, ZeroRowsGiveIdentityNullSpace) {
  const matrix a(0, 0);
  // Degenerate: no constraints at all over an empty space.
  EXPECT_EQ(null_space_basis(a).cols(), 0u);
}

TEST(NullSpaceTest, KnownNullVector) {
  // A x = 0 for x = (1, 1, -1): columns c0 + c1 = c2.
  const matrix a{{1, 0, 1}, {0, 1, 1}};
  const matrix n = null_space_basis(a);
  ASSERT_EQ(n.cols(), 1u);
  // The basis vector must be parallel to (1, 1, -1)/sqrt(3).
  const double scale = n(0, 0);
  EXPECT_NEAR(n(1, 0), scale, 1e-9);
  EXPECT_NEAR(n(2, 0), -scale, 1e-9);
  EXPECT_NEAR(std::abs(scale), 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(QrApplyTest, MatchesExplicitFactorization) {
  rng r(7);
  const matrix a = random_matrix(12, 5, r, 0.6);
  std::vector<double> b(a.rows());
  for (double& x : b) x = r.uniform(-2, 2);

  const auto full = qr_factorize(a);
  std::vector<double> c = b;
  const auto applied = qr_factorize_apply(a, c);

  // R, perm, rank come from the identical reflector arithmetic —
  // bit-for-bit equal, not merely close.
  EXPECT_EQ(applied.rank, full.rank);
  EXPECT_EQ(applied.perm, full.perm);
  EXPECT_EQ(applied.tolerance, full.tolerance);
  ASSERT_EQ(applied.r.rows(), full.r.rows());
  ASSERT_EQ(applied.r.cols(), full.r.cols());
  for (std::size_t i = 0; i < full.r.rows(); ++i) {
    for (std::size_t j = 0; j < full.r.cols(); ++j) {
      EXPECT_EQ(applied.r(i, j), full.r(i, j));
    }
  }
  // The Q factor is skipped entirely...
  EXPECT_EQ(applied.q.rows(), 0u);
  // ... and the rhs came back as Q^T b.
  const matrix qt = full.q.transposed();
  const std::vector<double> qtb = qt.multiply(b);
  ASSERT_EQ(c.size(), qtb.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], qtb[i], 1e-9);
  }
}

TEST(QrApplyTest, NullSpaceFromFactorizationMatchesDirect) {
  rng r(11);
  matrix a(9, 7);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = r.bernoulli(0.3) ? 1.0 : 0.0;
    }
  }
  std::vector<double> rhs(a.rows(), 1.0);
  const auto f = qr_factorize_apply(a, rhs);
  const matrix via_f = null_space_basis(f);
  const matrix direct = null_space_basis(a);
  ASSERT_EQ(via_f.rows(), direct.rows());
  ASSERT_EQ(via_f.cols(), direct.cols());
  for (std::size_t i = 0; i < direct.rows(); ++i) {
    for (std::size_t j = 0; j < direct.cols(); ++j) {
      EXPECT_EQ(via_f(i, j), direct(i, j));
    }
  }
}

// Property sweep over random (possibly rank-deficient) matrices.
class QrPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QrPropertyTest, FactorizationAndNullSpaceInvariants) {
  rng r(GetParam());
  const std::size_t rows = 1 + r.uniform_index(20);
  const std::size_t cols = 1 + r.uniform_index(20);
  // Low-density 0/1 matrices resemble the tomographic systems and are
  // often rank-deficient.
  matrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      a(i, j) = r.bernoulli(0.25) ? 1.0 : 0.0;
    }
  }

  const auto f = qr_factorize(a);
  expect_factorization_valid(a, f, 1e-8);
  EXPECT_LE(f.rank, std::min(rows, cols));

  const matrix n = null_space_basis(a);
  EXPECT_EQ(n.cols(), cols - f.rank);

  // Every null-space column satisfies A x ~ 0 and has unit norm.
  for (std::size_t j = 0; j < n.cols(); ++j) {
    const auto x = n.get_col(j);
    EXPECT_NEAR(norm2(x), 1.0, 1e-8);
    const auto ax = a.multiply(x);
    EXPECT_LT(norm2(ax), 1e-7);
  }

  // Null-space columns are orthonormal.
  for (std::size_t i = 0; i < n.cols(); ++i) {
    for (std::size_t j = i + 1; j < n.cols(); ++j) {
      EXPECT_NEAR(dot(n.get_col(i), n.get_col(j)), 0.0, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, QrPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace ntom
