#include "ntom/linalg/sparse.hpp"

#include <gtest/gtest.h>

#include "ntom/linalg/nullspace.hpp"
#include "ntom/linalg/qr.hpp"
#include "ntom/linalg/solve.hpp"
#include "ntom/util/rng.hpp"

namespace ntom {
namespace {

sparse_matrix random_sparse(std::size_t rows, std::size_t cols, double density,
                            std::uint64_t seed) {
  rng rand(seed);
  sparse_matrix m(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::size_t> idx;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rand.bernoulli(density)) idx.push_back(c);
    }
    m.append_row(idx, rand.uniform(0.5, 2.0));
  }
  return m;
}

TEST(SparseMatrixTest, AppendUniformRow) {
  sparse_matrix m(4);
  m.append_row({0, 2}, 3.0);
  m.append_row({}, 1.0);
  m.append_row({1, 2, 3});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 5u);

  const auto view = m.row(0);
  ASSERT_EQ(view.nnz, 2u);
  EXPECT_EQ(view.index[0], 0u);
  EXPECT_EQ(view.index[1], 2u);
  EXPECT_DOUBLE_EQ(view.value[0], 3.0);
  EXPECT_EQ(m.row(1).nnz, 0u);
  EXPECT_DOUBLE_EQ(m.row(2).value[2], 1.0);
}

TEST(SparseMatrixTest, AppendGeneralRow) {
  sparse_matrix m(3);
  m.append_row({0, 2}, {1.5, -2.0});
  const auto view = m.row(0);
  ASSERT_EQ(view.nnz, 2u);
  EXPECT_DOUBLE_EQ(view.value[0], 1.5);
  EXPECT_DOUBLE_EQ(view.value[1], -2.0);
}

TEST(SparseMatrixTest, ToDenseMatchesEntries) {
  sparse_matrix m(3);
  m.append_row({1}, 2.0);
  m.append_row({0, 2}, 1.0);
  const matrix d = m.to_dense();
  EXPECT_EQ(d, (matrix{{0.0, 2.0, 0.0}, {1.0, 0.0, 1.0}}));
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  const sparse_matrix m = random_sparse(7, 5, 0.4, 21);
  const matrix d = m.to_dense();
  const std::vector<double> x = {1.0, -2.0, 0.5, 3.0, 0.0};
  EXPECT_EQ(m.multiply(x), d.multiply(x));
}

TEST(SparseMatrixTest, TransposeMultiplyMatchesDense) {
  const sparse_matrix m = random_sparse(6, 4, 0.4, 22);
  const matrix d = m.to_dense();
  const std::vector<double> y = {1.0, 0.0, 2.0, -1.0, 0.5, 4.0};
  EXPECT_EQ(m.transpose_multiply(y), d.left_multiply(y));
}

TEST(SparseSolveTest, MatchesDenseLeastSquaresBitForBit) {
  // The sparse overload must agree exactly with the dense one — the
  // batch engine's determinism guarantee leans on this.
  const sparse_matrix a = random_sparse(12, 6, 0.3, 23);
  rng rand(24);
  std::vector<double> b(a.rows());
  for (auto& x : b) x = -rand.uniform();

  const lstsq_result sparse = solve_least_squares(a, b);
  const lstsq_result dense = solve_least_squares(a.to_dense(), b);
  EXPECT_EQ(sparse.rank, dense.rank);
  EXPECT_EQ(sparse.x, dense.x);
  EXPECT_EQ(sparse.identifiable, dense.identifiable);
  EXPECT_DOUBLE_EQ(sparse.residual_norm, dense.residual_norm);
}

TEST(SparseNullspaceTest, SparseRowOpsMatchDenseRowOps) {
  const matrix a{{1, 1, 0, 0}, {0, 0, 1, 1}};
  const matrix n = null_space_basis(a);
  ASSERT_EQ(n.cols(), 2u);

  // 0/1 row {x0, x2} in both encodings.
  const std::vector<std::size_t> sparse_row = {0, 2};
  const std::vector<double> dense_row = {1.0, 0.0, 1.0, 0.0};

  EXPECT_DOUBLE_EQ(row_nullspace_product(sparse_row, n),
                   row_nullspace_product(dense_row, n));
  EXPECT_EQ(row_increases_rank(sparse_row, n),
            row_increases_rank(dense_row, n));

  const matrix via_sparse = null_space_update(n, sparse_row);
  const matrix via_dense = null_space_update(n, dense_row);
  EXPECT_EQ(via_sparse, via_dense);
  EXPECT_EQ(via_sparse.cols(), n.cols() - 1);
}

TEST(SparseNullspaceTest, NoRankIncreaseLeavesBasisUntouched) {
  const matrix a{{1, 1, 0}};
  const matrix n = null_space_basis(a);
  // Row {x0, x1} is already in the row space.
  const matrix updated = null_space_update(n, std::vector<std::size_t>{0, 1});
  EXPECT_EQ(updated, n);
}

}  // namespace
}  // namespace ntom
