#include "ntom/linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "ntom/util/rng.hpp"

namespace ntom {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(MatrixTest, InitializerList) {
  matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, Identity) {
  const matrix eye = matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(eye(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, AppendRowGrowsAndAdoptsWidth) {
  matrix m;
  m.append_row({1.0, 2.0, 3.0});
  m.append_row({4.0, 5.0, 6.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 6.0);
}

TEST(MatrixTest, RowAndColumnExtraction) {
  matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.get_row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.get_col(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, Transpose) {
  matrix m{{1, 2, 3}, {4, 5, 6}};
  const matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(0, 1), 4.0);
  EXPECT_EQ(t(2, 0), 3.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(MatrixTest, MatrixMultiply) {
  matrix a{{1, 2}, {3, 4}};
  matrix b{{5, 6}, {7, 8}};
  const matrix c = a.multiply(b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, IdentityIsMultiplicativeNeutral) {
  matrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(a.multiply(matrix::identity(3)), a);
  EXPECT_EQ(matrix::identity(2).multiply(a), a);
}

TEST(MatrixTest, VectorMultiply) {
  matrix a{{1, 2}, {3, 4}, {5, 6}};
  const std::vector<double> ones{1.0, 1.0};
  EXPECT_EQ(a.multiply(ones), (std::vector<double>{3, 7, 11}));
  EXPECT_EQ(a.left_multiply({1.0, 0.0, 1.0}), (std::vector<double>{6, 8}));
}

TEST(MatrixTest, ColumnsSubmatrix) {
  matrix a{{1, 2, 3, 4}, {5, 6, 7, 8}};
  const matrix sub = a.columns(1, 2);
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_EQ(sub.cols(), 2u);
  EXPECT_EQ(sub(0, 0), 2.0);
  EXPECT_EQ(sub(1, 1), 7.0);
}

TEST(MatrixTest, SwapColumns) {
  matrix a{{1, 2}, {3, 4}};
  a.swap_columns(0, 1);
  EXPECT_EQ(a(0, 0), 2.0);
  EXPECT_EQ(a(1, 1), 3.0);
  a.swap_columns(1, 1);  // no-op.
  EXPECT_EQ(a(1, 1), 3.0);
}

TEST(MatrixTest, Norms) {
  matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(VectorOpsTest, NormDotAxpy) {
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  std::vector<double> a{1.0, 1.0};
  axpy(a, 2.0, {1.0, 2.0});
  EXPECT_EQ(a, (std::vector<double>{3.0, 5.0}));
}

// (A·B)^T == B^T·A^T on random matrices.
class MatrixPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatrixPropertyTest, TransposeOfProduct) {
  rng r(GetParam());
  const std::size_t m = 1 + r.uniform_index(8);
  const std::size_t k = 1 + r.uniform_index(8);
  const std::size_t n = 1 + r.uniform_index(8);
  matrix a(m, k), b(k, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < k; ++j) a(i, j) = r.uniform(-2, 2);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = r.uniform(-2, 2);

  const matrix lhs = a.multiply(b).transposed();
  const matrix rhs = b.transposed().multiply(a.transposed());
  ASSERT_EQ(lhs.rows(), rhs.rows());
  ASSERT_EQ(lhs.cols(), rhs.cols());
  for (std::size_t i = 0; i < lhs.rows(); ++i) {
    for (std::size_t j = 0; j < lhs.cols(); ++j) {
      EXPECT_NEAR(lhs(i, j), rhs(i, j), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MatrixPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace ntom
