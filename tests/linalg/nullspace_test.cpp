#include "ntom/linalg/nullspace.hpp"

#include <gtest/gtest.h>

#include "ntom/linalg/qr.hpp"
#include "ntom/util/rng.hpp"

namespace ntom {
namespace {

matrix random_binary(std::size_t rows, std::size_t cols, rng& r,
                     double density = 0.3) {
  matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = r.bernoulli(density) ? 1.0 : 0.0;
    }
  }
  return m;
}

TEST(RowNullspaceProductTest, DetectsRankIncrease) {
  // System: x0 + x1 = b. Null space spans (1,-1)/sqrt(2).
  const matrix a{{1, 1}};
  const matrix n = null_space_basis(a);
  ASSERT_EQ(n.cols(), 1u);

  // Row (1, 1) again: no rank increase.
  EXPECT_FALSE(row_increases_rank(std::vector<double>{1.0, 1.0}, n));
  // Row (1, 0): increases rank.
  EXPECT_TRUE(row_increases_rank(std::vector<double>{1.0, 0.0}, n));
}

TEST(RowNullspaceProductTest, EmptyNullSpaceNeverIncreases) {
  const matrix a = matrix::identity(3);
  const matrix n = null_space_basis(a);
  EXPECT_EQ(n.cols(), 0u);
  EXPECT_FALSE(row_increases_rank(std::vector<double>{1.0, 2.0, 3.0}, n));
}

TEST(NullSpaceUpdateTest, ShrinksDimensionByOne) {
  const matrix a{{1, 1, 0}};
  matrix n = null_space_basis(a);
  ASSERT_EQ(n.cols(), 2u);
  n = null_space_update(n, std::vector<double>{0.0, 0.0, 1.0});
  EXPECT_EQ(n.cols(), 1u);
  // Remaining basis is orthogonal to both constraints.
  const auto x = n.get_col(0);
  EXPECT_NEAR(x[0] + x[1], 0.0, 1e-9);
  EXPECT_NEAR(x[2], 0.0, 1e-9);
}

TEST(NullSpaceUpdateTest, NoOpWhenRowAddsNoRank) {
  const matrix a{{1, 1, 0}};
  const matrix n = null_space_basis(a);
  const matrix updated = null_space_update(n, std::vector<double>{2.0, 2.0, 0.0});
  EXPECT_EQ(updated.cols(), n.cols());
}

TEST(RowHammingWeightsTest, CountsNonZeros) {
  matrix n{{0.5, 0.0}, {0.0, 0.0}, {0.1, -0.2}};
  const auto w = row_hamming_weights(n);
  EXPECT_EQ(w, (std::vector<std::size_t>{1, 0, 2}));
}

TEST(IdentifiableCoordinatesTest, ZeroRowsAreIdentifiable) {
  matrix n{{0.0, 0.0}, {1e-3, 0.0}, {0.0, 0.0}};
  const auto id = identifiable_coordinates(n);
  EXPECT_TRUE(id.test(0));
  EXPECT_FALSE(id.test(1));
  EXPECT_TRUE(id.test(2));
}

TEST(IdentifiableCoordinatesTest, EmptyNullSpaceAllIdentifiable) {
  matrix n(4, 0);
  const auto id = identifiable_coordinates(n);
  EXPECT_EQ(id.count(), id.size());
}

// The central property: Algorithm 2's incremental update spans the same
// space as a from-scratch null-space computation after appending rows.
class NullSpaceUpdatePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NullSpaceUpdatePropertyTest, MatchesRecomputedNullSpace) {
  rng r(GetParam());
  const std::size_t cols = 4 + r.uniform_index(16);
  const std::size_t initial_rows = 1 + r.uniform_index(cols);
  matrix a = random_binary(initial_rows, cols, r);
  matrix n = null_space_basis(a);

  for (int step = 0; step < 8; ++step) {
    // Random new row; sometimes dependent, sometimes not.
    std::vector<double> row(cols, 0.0);
    for (auto& x : row) x = r.bernoulli(0.3) ? 1.0 : 0.0;

    const bool increases = row_increases_rank(row, n, 1e-9);
    const std::size_t rank_before = matrix_rank(a);
    a.append_row(row);
    const std::size_t rank_after = matrix_rank(a);
    EXPECT_EQ(increases, rank_after > rank_before)
        << "row_increases_rank disagrees with QR rank";

    n = null_space_update(n, row, 1e-9);
    const matrix reference = null_space_basis(a);
    ASSERT_EQ(n.cols(), reference.cols()) << "dimension drift at step " << step;

    // Same subspace: every incremental basis vector must be killed by A
    // (A x = 0) — this pins the span without comparing bases directly.
    for (std::size_t j = 0; j < n.cols(); ++j) {
      const auto x = n.get_col(j);
      const double scale = norm2(x);
      ASSERT_GT(scale, 1e-12);
      const auto ax = a.multiply(x);
      EXPECT_LT(norm2(ax) / scale, 1e-6)
          << "incremental basis escaped the true null space";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, NullSpaceUpdatePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace ntom
