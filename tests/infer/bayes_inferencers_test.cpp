#include <gtest/gtest.h>

#include "ntom/exp/metrics.hpp"
#include "ntom/infer/bayes_correlation.hpp"
#include "ntom/infer/bayes_independence.hpp"
#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using namespace topogen;

congestion_model toy_model(const topology& t,
                           std::vector<std::pair<std::size_t, double>> qs) {
  congestion_model m;
  m.phase_q.assign(1, std::vector<double>(t.num_router_links(), 0.0));
  m.congestable_links = bitvec(t.num_links());
  for (const auto& [r, q] : qs) m.phase_q[0][r] = q;
  return m;
}

inference_metrics score(const topology& t, const experiment_data& data,
                        const std::function<bitvec(const bitvec&)>& infer) {
  inference_scorer scorer;
  for (std::size_t i = 0; i < data.intervals; ++i) {
    scorer.add_interval(infer(data.congested_paths_at(i)),
                        data.true_links_at(i));
  }
  return scorer.result();
}

TEST(BayesIndependenceTest, AccurateOnIndependentLinks) {
  const topology t = make_toy(toy_case::case1);
  const auto model = toy_model(t, {{0, 0.3}, {3, 0.2}});
  sim_params sim;
  sim.intervals = 1500;
  sim.oracle_monitor = true;
  const auto data = run_experiment(t, model, sim);

  const bayes_independence_inferencer inferencer(t, data);
  const auto metrics =
      score(t, data, [&](const bitvec& c) { return inferencer.infer(c); });
  EXPECT_GT(metrics.detection_rate, 0.95);
  EXPECT_LT(metrics.false_positive_rate, 0.05);
}

TEST(BayesIndependenceTest, DegradesUnderPerfectCorrelation) {
  // §3.1: e2,e3 perfectly correlated plus an independent e1 that also
  // appears on both of e2's paths... the Independence step mis-splits
  // joints and the MAP step picks wrong solutions regularly.
  const topology t = make_toy(toy_case::case1);
  const auto model = toy_model(t, {{4, 0.3}, {0, 0.25}});
  sim_params sim;
  sim.intervals = 2000;
  sim.oracle_monitor = true;
  const auto data = run_experiment(t, model, sim);

  const bayes_independence_inferencer indep(t, data);
  const bayes_correlation_inferencer corr(t, data);
  const auto indep_m =
      score(t, data, [&](const bitvec& c) { return indep.infer(c); });
  const auto corr_m =
      score(t, data, [&](const bitvec& c) { return corr.infer(c); });

  // The correlation-aware algorithm should dominate under correlation.
  EXPECT_GE(corr_m.detection_rate, indep_m.detection_rate - 0.02);
  EXPECT_LE(corr_m.false_positive_rate, indep_m.false_positive_rate + 0.02);
}

TEST(BayesCorrelationTest, AccurateOnCorrelatedToy) {
  const topology t = make_toy(toy_case::case1);
  const auto model = toy_model(t, {{4, 0.3}});
  sim_params sim;
  sim.intervals = 1500;
  sim.oracle_monitor = true;
  const auto data = run_experiment(t, model, sim);

  const bayes_correlation_inferencer inferencer(t, data);
  const auto metrics =
      score(t, data, [&](const bitvec& c) { return inferencer.infer(c); });
  EXPECT_GT(metrics.detection_rate, 0.9);
  EXPECT_LT(metrics.false_positive_rate, 0.1);
}

TEST(BayesInferencersTest, SolutionsExplainObservations) {
  const topology t = make_toy(toy_case::case1);
  const auto model = toy_model(t, {{0, 0.3}, {4, 0.25}});
  sim_params sim;
  sim.intervals = 300;
  sim.oracle_monitor = true;
  const auto data = run_experiment(t, model, sim);

  const bayes_independence_inferencer indep(t, data);
  const bayes_correlation_inferencer corr(t, data);
  for (std::size_t i = 0; i < data.intervals; ++i) {
    const bitvec congested = data.congested_paths_at(i);
    const auto obs = make_observation(t, congested);
    EXPECT_TRUE(explains_observation(t, obs, indep.infer(congested)));
    EXPECT_TRUE(explains_observation(t, obs, corr.infer(congested)));
  }
}

TEST(BayesInferencersTest, Step1Accessible) {
  const topology t = make_toy(toy_case::case1);
  const auto model = toy_model(t, {{0, 0.3}});
  sim_params sim;
  sim.intervals = 500;
  sim.oracle_monitor = true;
  const auto data = run_experiment(t, model, sim);
  const bayes_independence_inferencer indep(t, data);
  EXPECT_GT(indep.step1().equations_used, 0u);
  const bayes_correlation_inferencer corr(t, data);
  EXPECT_GT(corr.step1().equations_used, 0u);
}

}  // namespace
}  // namespace ntom
