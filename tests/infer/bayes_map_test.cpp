#include "ntom/infer/bayes_map.hpp"

#include <gtest/gtest.h>

#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using namespace topogen;

bitvec paths(const topology& t, std::initializer_list<path_id> ids) {
  bitvec b(t.num_paths());
  for (const auto p : ids) b.set(p);
  return b;
}

TEST(MapIndependentTest, PicksHighProbabilityExplanation) {
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, paths(t, {toy_p1, toy_p2, toy_p3}));
  // e2 and e3 are the usual suspects.
  std::vector<double> p(t.num_links(), 0.01);
  p[toy_e2] = 0.6;
  p[toy_e3] = 0.6;
  const bitvec sol = map_independent(t, obs, p);
  EXPECT_TRUE(sol.test(toy_e2));
  EXPECT_TRUE(sol.test(toy_e3));
  EXPECT_TRUE(explains_observation(t, obs, sol));
}

TEST(MapIndependentTest, MatchesExactEnumerationOnToy) {
  const topology t = make_toy(toy_case::case1);
  std::vector<double> p(t.num_links(), 0.0);
  p[toy_e1] = 0.30;
  p[toy_e2] = 0.05;
  p[toy_e3] = 0.25;
  p[toy_e4] = 0.10;
  for (std::uint32_t mask = 1; mask < 8; ++mask) {
    bitvec congested(t.num_paths());
    for (int b = 0; b < 3; ++b) {
      if (mask & (1u << b)) congested.set(static_cast<path_id>(b));
    }
    const auto obs = make_observation(t, congested);
    if (!explains_observation(t, obs, obs.candidate_links)) {
      continue;  // inconsistent observation: no valid explanation.
    }
    const bitvec greedy = map_independent(t, obs, p);
    const bitvec exact = map_exact_independent(t, obs, p);
    EXPECT_TRUE(explains_observation(t, obs, greedy));
    // Greedy should match the exact MAP on this tiny instance.
    EXPECT_EQ(greedy, exact) << "observation mask " << mask;
  }
}

TEST(MapIndependentTest, PaperExampleWrongUnderCorrelation) {
  // §3.1: e2,e3 perfectly correlated with joint 0.3; e1 mildly
  // congested. Under Independence the estimates make {e1,e3} beat the
  // true {e2,e3}: p(e1) high from mis-attribution. We emulate the
  // mis-estimated marginals CLINK would compute and check the MAP step
  // prefers the wrong solution.
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, paths(t, {toy_p1, toy_p2, toy_p3}));
  std::vector<double> p(t.num_links(), 0.0);
  // Independence-step estimates: correlation mass leaks onto e1.
  p[toy_e1] = 0.35;
  p[toy_e2] = 0.18;
  p[toy_e3] = 0.30;
  p[toy_e4] = 0.02;
  const bitvec sol = map_independent(t, obs, p);
  EXPECT_TRUE(sol.test(toy_e1));
  EXPECT_FALSE(sol.test(toy_e2));  // the miss the paper describes.
}

TEST(MapCorrelatedTest, JointEstimatesFixTheCorrelatedCase) {
  // Same observation, but the correlation-aware scorer knows
  // P(e2,e3 both congested) = 0.3 >> P(e1) P(e3): it should pick the
  // pair {e2,e3} and exonerate e1.
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, paths(t, {toy_p1, toy_p2, toy_p3}));

  bitvec potcong(t.num_links());
  for (link_id e = 0; e < 4; ++e) potcong.set(e);
  subset_catalog catalog = subset_catalog::build(t, potcong);
  probability_estimates est(t, std::move(catalog), potcong);
  auto set_g = [&](std::initializer_list<link_id> links, double g) {
    bitvec b(t.num_links());
    for (const auto e : links) b.set(e);
    est.set_good_probability(est.catalog().find(b), g, true);
  };
  set_g({toy_e1}, 0.95);              // e1 rarely congested.
  set_g({toy_e2}, 0.70);
  set_g({toy_e3}, 0.70);
  set_g({toy_e2, toy_e3}, 0.70);      // perfect correlation.
  set_g({toy_e4}, 0.98);

  const bitvec sol = map_correlated(t, obs, est);
  EXPECT_TRUE(sol.test(toy_e2));
  EXPECT_TRUE(sol.test(toy_e3));
  EXPECT_TRUE(explains_observation(t, obs, sol));
}

TEST(MapCorrelatedTest, FallsBackGracefullyWithoutJoints) {
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, paths(t, {toy_p1}));
  bitvec potcong(t.num_links());
  for (link_id e = 0; e < 4; ++e) potcong.set(e);
  subset_catalog catalog = subset_catalog::build(t, potcong);
  const probability_estimates est(t, std::move(catalog), potcong);  // nothing set.
  const bitvec sol = map_correlated(t, obs, est);
  EXPECT_TRUE(explains_observation(t, obs, sol));
}

TEST(MapExactTest, RefusesOversizedInstances) {
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, paths(t, {toy_p1, toy_p2, toy_p3}));
  std::vector<double> p(t.num_links(), 0.2);
  const bitvec sol = map_exact_independent(t, obs, p, /*max_candidates=*/2);
  EXPECT_TRUE(sol.empty());
}

TEST(MapIndependentTest, EmptyObservationEmptySolution) {
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, bitvec(t.num_paths()));
  const std::vector<double> p(t.num_links(), 0.3);
  EXPECT_TRUE(map_independent(t, obs, p).empty());
}

}  // namespace
}  // namespace ntom
