#include "ntom/infer/observation.hpp"

#include <gtest/gtest.h>

#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using namespace topogen;

bitvec paths(const topology& t, std::initializer_list<path_id> ids) {
  bitvec b(t.num_paths());
  for (const auto p : ids) b.set(p);
  return b;
}

TEST(ObservationTest, AllPathsCongested) {
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, paths(t, {toy_p1, toy_p2, toy_p3}));
  EXPECT_TRUE(obs.good_paths.empty());
  EXPECT_TRUE(obs.good_links.empty());
  EXPECT_EQ(obs.candidate_links.count(), 4u);
}

TEST(ObservationTest, GoodPathsClearTheirLinks) {
  const topology t = make_toy(toy_case::case1);
  // p1 congested, p2 and p3 good -> e1, e3, e4 known good; only e2
  // can explain p1.
  const auto obs = make_observation(t, paths(t, {toy_p1}));
  EXPECT_EQ(obs.good_links.to_indices(),
            (std::vector<std::size_t>{toy_e1, toy_e3, toy_e4}));
  EXPECT_EQ(obs.candidate_links.to_indices(),
            (std::vector<std::size_t>{toy_e2}));
}

TEST(ObservationTest, NothingCongested) {
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, bitvec(t.num_paths()));
  EXPECT_TRUE(obs.candidate_links.empty());
  EXPECT_EQ(obs.good_links.count(), 4u);
}

TEST(ObservationTest, ExplainsObservationAcceptsValidSolution) {
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, paths(t, {toy_p1, toy_p2, toy_p3}));
  bitvec sol(t.num_links());
  sol.set(toy_e1);
  sol.set(toy_e3);
  EXPECT_TRUE(explains_observation(t, obs, sol));
}

TEST(ObservationTest, ExplainsObservationRejectsUncovered) {
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, paths(t, {toy_p1, toy_p2, toy_p3}));
  bitvec sol(t.num_links());
  sol.set(toy_e1);  // covers p1, p2 but not p3.
  EXPECT_FALSE(explains_observation(t, obs, sol));
}

TEST(ObservationTest, ExplainsObservationRejectsGoodLinks) {
  const topology t = make_toy(toy_case::case1);
  // p2 good: e1, e3 known good.
  const auto obs = make_observation(t, paths(t, {toy_p1, toy_p3}));
  bitvec sol(t.num_links());
  sol.set(toy_e1);  // on a good path -> not a candidate.
  sol.set(toy_e4);
  EXPECT_FALSE(explains_observation(t, obs, sol));

  bitvec valid(t.num_links());
  valid.set(toy_e2);
  valid.set(toy_e4);
  EXPECT_TRUE(explains_observation(t, obs, valid));
}

}  // namespace
}  // namespace ntom
