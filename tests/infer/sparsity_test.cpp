#include "ntom/infer/sparsity.hpp"

#include <gtest/gtest.h>

#include "ntom/topogen/toy.hpp"

namespace ntom {
namespace {

using namespace topogen;

bitvec paths(const topology& t, std::initializer_list<path_id> ids) {
  bitvec b(t.num_paths());
  for (const auto p : ids) b.set(p);
  return b;
}

TEST(SparsityTest, PaperExampleAllPathsCongested) {
  // §3.1: with {p1,p2,p3} congested, Sparsity infers {e1,e3} (each
  // participates in two congested paths).
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, paths(t, {toy_p1, toy_p2, toy_p3}));
  const bitvec sol = infer_sparsity(t, obs);
  EXPECT_EQ(sol.to_indices(), (std::vector<std::size_t>{toy_e1, toy_e3}));
}

TEST(SparsityTest, PaperFailureModeEdgeCongestion) {
  // §3.1: if e2 and e3 are congested (edge congestion), the observation
  // is still {p1,p2,p3} and Sparsity picks {e1,e3} — it misses e2 and
  // falsely blames e1. This test pins the failure mode.
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, paths(t, {toy_p1, toy_p2, toy_p3}));
  const bitvec sol = infer_sparsity(t, obs);
  bitvec actual(t.num_links());
  actual.set(toy_e2);
  actual.set(toy_e3);
  EXPECT_FALSE(sol == actual);
  EXPECT_FALSE(sol.test(toy_e2));  // missed congested link.
  EXPECT_TRUE(sol.test(toy_e1));   // false positive.
}

TEST(SparsityTest, SingleCongestedPath) {
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, paths(t, {toy_p1}));
  const bitvec sol = infer_sparsity(t, obs);
  // Only e2 is a candidate (e1 exonerated by good p2).
  EXPECT_EQ(sol.to_indices(), (std::vector<std::size_t>{toy_e2}));
}

TEST(SparsityTest, NoCongestionNoBlame) {
  const topology t = make_toy(toy_case::case1);
  const auto obs = make_observation(t, bitvec(t.num_paths()));
  EXPECT_TRUE(infer_sparsity(t, obs).empty());
}

TEST(SparsityTest, SolutionExplainsEveryConsistentObservation) {
  const topology t = make_toy(toy_case::case1);
  for (std::uint32_t mask = 1; mask < 8; ++mask) {
    bitvec congested(t.num_paths());
    for (int b = 0; b < 3; ++b) {
      if (mask & (1u << b)) congested.set(static_cast<path_id>(b));
    }
    const auto obs = make_observation(t, congested);
    // Inconsistent observations (good paths exonerate every link of a
    // congested path; possible under probing noise) have no valid
    // explanation — the candidate set itself cannot cover.
    const bool consistent =
        explains_observation(t, obs, obs.candidate_links);
    const bitvec sol = infer_sparsity(t, obs);
    if (consistent) {
      EXPECT_TRUE(explains_observation(t, obs, sol))
          << "mask " << mask << " sol " << sol.to_string();
    } else {
      EXPECT_TRUE(sol.is_subset_of(obs.candidate_links));
    }
  }
}

TEST(SparsityTest, SolutionIsMinimalOnToy) {
  // Greedy cover on the toy never uses more links than congested paths.
  const topology t = make_toy(toy_case::case1);
  for (std::uint32_t mask = 1; mask < 8; ++mask) {
    bitvec congested(t.num_paths());
    for (int b = 0; b < 3; ++b) {
      if (mask & (1u << b)) congested.set(static_cast<path_id>(b));
    }
    const auto obs = make_observation(t, congested);
    EXPECT_LE(infer_sparsity(t, obs).count(), congested.count());
  }
}

}  // namespace
}  // namespace ntom
