// Microbenchmarks for the measurement simulator: interval sampling and
// whole-experiment throughput (the simulator dominates wall-clock at
// paper scale — 1500 paths x 1000 intervals x 200 packets).
#include <benchmark/benchmark.h>

#include "ntom/sim/packet_sim.hpp"
#include "ntom/sim/scenario.hpp"
#include "ntom/topogen/brite.hpp"

namespace {

void bm_sample_interval(benchmark::State& state) {
  ntom::topogen::brite_params params;
  params.seed = 3;
  const auto topo = ntom::topogen::generate_brite(params);
  ntom::scenario_params sp;
  sp.seed = 5;
  const auto model = ntom::make_scenario(
      topo, "random_congestion", sp);
  ntom::link_state_sampler sampler(topo, model, 17);
  std::size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_interval(t++));
  }
}
BENCHMARK(bm_sample_interval);

void bm_run_experiment(benchmark::State& state) {
  ntom::topogen::brite_params params;
  params.seed = 3;
  const auto topo = ntom::topogen::generate_brite(params);
  ntom::scenario_params sp;
  sp.seed = 5;
  const auto model = ntom::make_scenario(
      topo, "random_congestion", sp);
  ntom::sim_params sim;
  sim.intervals = static_cast<std::size_t>(state.range(0));
  sim.packets_per_path = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ntom::run_experiment(topo, model, sim));
  }
}
BENCHMARK(bm_run_experiment)->Arg(50)->Arg(200);

void bm_run_experiment_oracle(benchmark::State& state) {
  ntom::topogen::brite_params params;
  params.seed = 3;
  const auto topo = ntom::topogen::generate_brite(params);
  ntom::scenario_params sp;
  sp.seed = 5;
  const auto model = ntom::make_scenario(
      topo, "random_congestion", sp);
  ntom::sim_params sim;
  sim.intervals = static_cast<std::size_t>(state.range(0));
  sim.oracle_monitor = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ntom::run_experiment(topo, model, sim));
  }
}
BENCHMARK(bm_run_experiment_oracle)->Arg(50)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
