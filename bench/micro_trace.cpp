// Microbenchmark + self-check for the trace capture/replay subsystem
// (ISSUE 5): capture overhead over a plain simulation pass, replay
// throughput vs re-simulating, bytes per interval of the on-disk
// format, and a bit-identity assertion — a captured corpus replayed
// through the estimator pipeline must reproduce the live run's
// measurement rows exactly.
//
//   ./micro_trace                       # defaults: T = 20000
//   ./micro_trace --intervals=50000 --json
//
// --json[=<path>] writes BENCH_micro_trace.json. Gated headline cells:
// trace/file_bytes, trace/bytes_per_interval (negotiated codecs),
// trace/raw_file_bytes, trace/raw_bytes_per_interval (compress=false —
// the pair pins the format's compression win exactly; any drift is a
// format change), replay/identical, replay/mmap_identical, and
// capture/sync_async_identical (the self-checks). Timing cells
// (capture_overhead_pct, speedup_vs_simulate_x, *_seconds) are recorded
// for trend reading, never gated.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ntom/exp/evals.hpp"
#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/trace/trace_reader.hpp"
#include "ntom/trace/trace_writer.hpp"
#include "ntom/util/flags.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

struct null_sink final : ntom::measurement_sink {
  void consume(const ntom::measurement_chunk& chunk) override {
    intervals += chunk.count;
  }
  std::size_t intervals = 0;
};

bool files_identical(const std::string& a, const std::string& b) {
  std::ifstream fa(a, std::ios::binary);
  std::ifstream fb(b, std::ios::binary);
  if (!fa || !fb) return false;
  std::ostringstream ba, bb;
  ba << fa.rdbuf();
  bb << fb.rdbuf();
  return ba.str() == bb.str();
}

bool rows_identical(const std::vector<ntom::measurement>& a,
                    const std::vector<ntom::measurement>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].series != b[i].series || a[i].metric != b[i].metric ||
        a[i].value != b[i].value) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const auto intervals =
      static_cast<std::size_t>(opts.get_int("intervals", 20000));
  const auto reps = static_cast<std::size_t>(opts.get_int("reps", 3));
  const std::string trace_path =
      opts.get_string("trace", "micro_trace_corpus.trc");

  run_config config;
  config.topo = "brite,n=10,hosts=30,paths=60";
  config.topo_seed = 5;
  config.scenario = "no_independence";
  config.scenario_opts.seed = 7;
  config.sim.intervals = intervals;
  config.sim.oracle_monitor = true;  // measure the pipeline, not probing.
  config.sim.seed = 9;
  const run_artifacts live = prepare_topology(config);

  // Warm-up pass off the clock (page cache, branch predictors) so the
  // first timed simulate pass is not penalized vs the capture pass.
  {
    null_sink warmup;
    stream_experiment(live, config, warmup);
  }

  // Pass timings: plain simulation vs simulation + capture (async
  // background writer — the default) vs the old-style sync capture vs
  // replay. Each pass keeps the fastest rep: min-over-reps rejects
  // scheduler noise, which otherwise swamps the few-percent capture
  // delta on a busy host.
  double simulate_seconds = 1e300;
  double capture_seconds = 1e300;
  double capture_sync_seconds = 1e300;
  std::uint64_t file_bytes = 0;
  const std::string sync_path = trace_path + ".sync";
  for (std::size_t r = 0; r < reps; ++r) {
    null_sink devnull;
    const auto t0 = clock_type::now();
    stream_experiment(live, config, devnull);
    simulate_seconds = std::min(simulate_seconds, seconds_since(t0));

    run_config capture_config = config;
    capture_config.capture.path = trace_path;
    const auto writer = make_capture_writer(capture_config, live);
    null_sink devnull2;
    fanout_sink fanout;
    fanout.add(&devnull2);
    fanout.add(writer.get());
    const auto t1 = clock_type::now();
    stream_experiment(live, config, fanout);
    capture_seconds = std::min(capture_seconds, seconds_since(t1));
    file_bytes = writer->bytes_written();

    run_config sync_config = config;
    sync_config.capture.path = sync_path;
    sync_config.capture.async = false;
    const auto sync_writer = make_capture_writer(sync_config, live);
    null_sink devnull3;
    fanout_sink sync_fanout;
    sync_fanout.add(&devnull3);
    sync_fanout.add(sync_writer.get());
    const auto t2 = clock_type::now();
    stream_experiment(live, config, sync_fanout);
    capture_sync_seconds = std::min(capture_sync_seconds, seconds_since(t2));
  }

  // Raw capture (negotiation off) for the compression headline — size
  // only, untimed.
  std::uint64_t raw_file_bytes = 0;
  const std::string raw_path = trace_path + ".raw";
  {
    run_config raw_config = config;
    raw_config.capture.path = raw_path;
    raw_config.capture.compress = false;
    const auto raw_writer = make_capture_writer(raw_config, live);
    stream_experiment(live, config, *raw_writer);
    raw_file_bytes = raw_writer->bytes_written();
  }

  const trace_reader reader(trace_path);
  double replay_seconds = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    null_sink devnull;
    const auto t2 = clock_type::now();
    reader.stream(devnull, default_chunk_intervals);
    replay_seconds = std::min(replay_seconds, seconds_since(t2));
    if (devnull.intervals != intervals) {
      std::fprintf(stderr, "replay interval count mismatch\n");
      return 1;
    }
  }
  const double overhead_pct =
      100.0 * (capture_seconds - simulate_seconds) / simulate_seconds;
  const double overhead_sync_pct =
      100.0 * (capture_sync_seconds - simulate_seconds) / simulate_seconds;
  const double replay_speedup = simulate_seconds / replay_seconds;
  const double bytes_per_interval =
      static_cast<double>(file_bytes) / static_cast<double>(intervals);
  const double raw_bytes_per_interval =
      static_cast<double>(raw_file_bytes) / static_cast<double>(intervals);
  const double compression_x =
      static_cast<double>(raw_file_bytes) / static_cast<double>(file_bytes);

  // Self-check: the async background writer and the sync path must
  // produce byte-for-byte the same file.
  const bool sync_async_identical = files_identical(trace_path, sync_path);

  // Self-check: the captured corpus replayed through the estimator
  // pipeline (at a different chunk size) must reproduce the live run's
  // rows bit-for-bit.
  const std::vector<estimator_spec> estimators = {"sparsity", "independence"};
  const batch_eval_fn eval = estimator_eval(
      estimators, {.boolean_metrics = true, .link_error_metrics = false});
  const run_artifacts live_run = prepare_run(config);
  const auto live_rows = eval(config, live_run);

  run_config replay_config;
  replay_config.scenario = spec("trace").with_option("file", trace_path);
  replay_config.stream.chunk_intervals = 97;  // never the capture granularity.
  const run_artifacts replay_run = prepare_run(replay_config);
  const auto replay_rows = eval(replay_config, replay_run);
  const bool identical = rows_identical(live_rows, replay_rows);

  // Self-check: buffered replay must match the default path (which
  // serves zero-copy from an mmap view where the platform allows).
  run_config buffered_config = replay_config;
  buffered_config.scenario =
      replay_config.scenario.with_option("mmap", "false");
  const run_artifacts buffered_run = prepare_run(buffered_config);
  const bool mmap_identical =
      rows_identical(live_rows, eval(buffered_config, buffered_run)) &&
      identical;

  std::printf("micro_trace: %zu paths x %zu intervals, %zu reps\n\n",
              live.topo().num_paths(), intervals, reps);
  std::printf("  simulate pass              %8.3f s\n", simulate_seconds);
  std::printf("  simulate + capture pass    %8.3f s  (%.1f%% overhead, async)\n",
              capture_seconds, overhead_pct);
  std::printf("  simulate + capture (sync)  %8.3f s  (%.1f%% overhead)\n",
              capture_sync_seconds, overhead_sync_pct);
  std::printf("  replay pass                %8.3f s  (%.2fx vs simulate)\n",
              replay_seconds, replay_speedup);
  std::printf("  trace file (negotiated)    %8llu bytes (%.2f per interval)\n",
              static_cast<unsigned long long>(file_bytes),
              bytes_per_interval);
  std::printf("  trace file (raw planes)    %8llu bytes (%.2f per interval, "
              "compression x%.2f)\n",
              static_cast<unsigned long long>(raw_file_bytes),
              raw_bytes_per_interval, compression_x);
  std::printf("  sync vs async capture file %s\n",
              sync_async_identical ? "BYTE-IDENTICAL" : "DIFFER (BUG)");
  std::printf("  capture->replay estimator rows %s\n",
              identical ? "BIT-IDENTICAL" : "DIFFER (BUG)");
  std::printf("  mmap vs buffered replay rows   %s  (default replay %s)\n",
              mmap_identical ? "BIT-IDENTICAL" : "DIFFER (BUG)",
              reader.mapped() ? "mmap'd" : "buffered");
  if (!identical || !sync_async_identical || !mmap_identical) return 1;

  batch_report report;
  run_result result;
  result.index = 0;
  result.label = "micro_trace";
  result.seconds = simulate_seconds + capture_seconds + replay_seconds;
  result.measurements = {
      {"simulate", "pass_seconds", simulate_seconds},
      {"capture", "pass_seconds", capture_seconds},
      {"capture", "capture_overhead_pct", overhead_pct},
      {"capture", "pass_sync_seconds", capture_sync_seconds},
      {"capture", "capture_overhead_sync_pct", overhead_sync_pct},
      {"capture", "sync_async_identical", sync_async_identical ? 1.0 : 0.0},
      {"replay", "pass_seconds", replay_seconds},
      {"replay", "speedup_vs_simulate_x", replay_speedup},
      {"replay", "identical", identical ? 1.0 : 0.0},
      {"replay", "mmap_identical", mmap_identical ? 1.0 : 0.0},
      {"trace", "file_bytes", static_cast<double>(file_bytes)},
      {"trace", "bytes_per_interval", bytes_per_interval},
      {"trace", "raw_file_bytes", static_cast<double>(raw_file_bytes)},
      {"trace", "raw_bytes_per_interval", raw_bytes_per_interval},
      {"trace", "compression_x", compression_x},
  };
  report.total_seconds = result.seconds;
  report.add(std::move(result));
  maybe_write_bench_json(report, opts, "micro_trace",
                         {{"intervals", std::to_string(intervals)},
                          {"reps", std::to_string(reps)}});
  std::remove(trace_path.c_str());
  std::remove(sync_path.c_str());
  std::remove(raw_path.c_str());
  return 0;
}
