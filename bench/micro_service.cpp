// Microbenchmark for the online tomography service (ISSUE 6): snapshot
// query throughput while an ingest thread slides the measurement window
// and refits, plus the deterministic contracts the bench gate holds —
// the windowed fit stays bit-identical to a fresh one-shot fit over the
// same chunks, no reader ever observes a torn snapshot, and the window
// state stays O(window), not O(stream).
//
//   ./micro_service                      # defaults: T = 4000, 3 readers
//   ./micro_service --intervals=8000 --readers=4 --json
//
// --json[=<path>] writes BENCH_micro_service.json. Gated cells:
// service/window_fit_identical, readers/untorn_identical, and
// service/window_state_bytes (exact). Throughput cells (mqps,
// chunks/sec) are recorded but never gated.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "ntom/exp/batch.hpp"
#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/service/service.hpp"
#include "ntom/util/flags.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Buffers a full streamed pass so the bench can replay it through the
/// service and independently slice the final window for the reference
/// fit.
class chunk_collector final : public ntom::measurement_sink {
 public:
  void consume(const ntom::measurement_chunk& chunk) override {
    chunks.push_back(chunk);
  }
  std::vector<ntom::measurement_chunk> chunks;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const auto intervals =
      static_cast<std::size_t>(opts.get_int("intervals", 4000));
  const auto chunk_size = static_cast<std::size_t>(opts.get_int("chunk", 64));
  const auto window = static_cast<std::size_t>(opts.get_int("window", 8));
  const auto num_readers =
      static_cast<std::size_t>(opts.get_int("readers", 3));

  run_config config;
  config.topo = "brite,n=12,hosts=36,paths=72";
  config.topo_seed = 3;
  config.scenario = "hotspot_drift";
  config.scenario_opts.seed = 31;
  config.scenario_opts.phase_length = 40;
  config.sim.intervals = intervals;
  config.sim.packets_per_path = 40;
  config.sim.seed = 57;
  config.stream.enabled = true;
  config.stream.chunk_intervals = chunk_size;

  const run_artifacts run = prepare_topology(config);
  chunk_collector collected;
  stream_experiment(run, config, collected);
  const std::size_t total_chunks = collected.chunks.size();

  service_config cfg;
  cfg.estimator = "independence";
  cfg.window_chunks = window;
  cfg.refit_every = 1;
  tomography_service service(cfg);
  service.begin_epoch(run.topo_ptr);

  // Readers hammer the full query surface off whatever snapshot is
  // current while the main thread ingests — the service's concurrency
  // contract, measured instead of merely asserted.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (std::size_t r = 0; r < num_readers; ++r) {
    readers.emplace_back([&] {
      std::uint64_t local = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::shared_ptr<const service_snapshot> snap =
            service.snapshot();
        if (snap == nullptr) continue;
        if (!snap->verify()) torn.fetch_add(1, std::memory_order_relaxed);
        (void)snap->congested_links(0.5);
        (void)snap->confidence();
        for (link_id e = 0; e < snap->topo().num_links(); ++e) {
          (void)snap->link_estimate(e);
        }
        ++local;
      }
      queries.fetch_add(local, std::memory_order_relaxed);
    });
  }

  const auto t0 = clock_type::now();
  for (const measurement_chunk& chunk : collected.chunks) {
    service.ingest(chunk);
  }
  service.flush();
  const double ingest_seconds = seconds_since(t0);
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Deterministic contract 1: the final published window fit equals a
  // fresh one-shot streaming fit over exactly the window's chunks.
  const std::shared_ptr<const service_snapshot> last = service.snapshot();
  if (last == nullptr) {
    std::fprintf(stderr, "no snapshot after ingest\n");
    return 1;
  }
  const std::size_t begin =
      total_chunks > window ? total_chunks - window : 0;
  const std::unique_ptr<estimator> reference = make_estimator(cfg.estimator);
  std::size_t ref_intervals = 0;
  for (std::size_t i = begin; i < total_chunks; ++i) {
    ref_intervals += collected.chunks[i].count;
  }
  reference->begin_fit(run.topo(), ref_intervals);
  for (std::size_t i = begin; i < total_chunks; ++i) {
    reference->consume(collected.chunks[i]);
  }
  reference->end_fit();
  const link_estimates expected = reference->links();
  bool identical = last->links().size() == expected.congestion.size();
  for (link_id e = 0; identical && e < run.topo().num_links(); ++e) {
    const snapshot_link& got = last->link_estimate(e);
    identical = got.estimated == expected.estimated.test(e) &&
                (!got.estimated || got.congestion == expected.congestion[e]);
  }
  if (!identical) {
    std::fprintf(stderr, "windowed fit diverged from one-shot reference\n");
    return 1;
  }

  // Deterministic contract 2: bounded window state. The retained chunk
  // matrices are the service's whole measurement footprint.
  std::size_t window_state_bytes = 0;
  for (std::size_t i = begin; i < total_chunks; ++i) {
    window_state_bytes += collected.chunks[i].congested_paths.memory_bytes() +
                          collected.chunks[i].true_links.memory_bytes();
  }

  const double total_queries = static_cast<double>(queries.load());
  const double mqps = total_queries / ingest_seconds / 1e6;
  const double chunks_per_sec =
      static_cast<double>(total_chunks) / ingest_seconds;
  const service_stats& stats = service.stats();

  std::printf("micro_service: %zu links, %zu chunks x %zu intervals, "
              "window %zu, %zu readers\n\n",
              run.topo().num_links(), total_chunks, chunk_size, window,
              num_readers);
  std::printf("  ingest + refit every chunk      %8.2f chunks/s (%.3f s)\n",
              chunks_per_sec, ingest_seconds);
  std::printf("  concurrent snapshot queries     %8.3f Mq/s across %zu "
              "readers\n",
              mqps, num_readers);
  std::printf("  torn snapshots observed         %8llu\n",
              static_cast<unsigned long long>(torn.load()));
  std::printf("  window fit == one-shot fit      %8s\n",
              identical ? "yes" : "NO");
  std::printf("  window measurement state        %8zu bytes (%zu chunks)\n",
              window_state_bytes, total_chunks - begin);

  batch_report report;
  run_result result;
  result.index = 0;
  result.label = "micro_service";
  result.seconds = ingest_seconds;
  result.measurements = {
      {"ingest", "chunks_per_sec", chunks_per_sec},
      {"ingest", "pass_seconds", ingest_seconds},
      {"queries", "concurrent_mqps", mqps},
      {"queries", "torn", static_cast<double>(torn.load())},
      {"readers", "untorn_identical", torn.load() == 0 ? 1.0 : 0.0},
      {"service", "window_fit_identical", identical ? 1.0 : 0.0},
      {"service", "window_state_bytes",
       static_cast<double>(window_state_bytes)},
      {"service", "refits", static_cast<double>(stats.refits.load())},
      {"service", "chunks_retired",
       static_cast<double>(stats.chunks_retired.load())},
  };
  report.total_seconds = result.seconds;
  report.add(std::move(result));
  maybe_write_bench_json(report, opts, "micro_service",
                         {{"intervals", std::to_string(intervals)},
                          {"chunk", std::to_string(chunk_size)},
                          {"window", std::to_string(window)},
                          {"readers", std::to_string(num_readers)}});
  return torn.load() == 0 ? 0 : 1;
}
