// Benchmark for the sharded grid scheduler (ISSUE 4): the
// topology-cache wall-clock win on a multi-replica BRITE grid, and the
// work-stealing cell counters.
//
// The grid is scenario arms x replicas on one BRITE spec, so every
// replica generates its topology once and the scenario arms reuse it;
// the uncached pass regenerates per run (the pre-grid behavior). Both
// passes produce bit-identical aggregates — the bench asserts that too.
//
//   ./grid_sched                      # defaults: 8 replicas, 3 arms
//   ./grid_sched --replicas=12 --intervals=150 --threads=4 --json
//
// --json[=<path>] writes BENCH_grid_sched.json. The headline cell is
// scheduler/speedup_cached_x (> 1 expected whenever topology generation
// is a visible slice of run time).
#include <chrono>
#include <cstdio>
#include <string>

#include "ntom/api/experiment.hpp"
#include "ntom/exp/report.hpp"
#include "ntom/util/flags.hpp"
#include "ntom/util/thread_pool.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const auto replicas = static_cast<std::size_t>(opts.get_int("replicas", 8));
  const auto intervals =
      static_cast<std::size_t>(opts.get_int("intervals", 120));
  const auto threads = static_cast<std::size_t>(opts.get_int("threads", 0));
  const std::string topo =
      opts.get_string("topo", "brite,n=24,hosts=60,paths=240");
  // Default to the cheap estimator: the bench isolates the scheduler +
  // topology-generation slice, not estimator cost (pass
  // --estimator=bayes-indep to shift the balance).
  const std::string estimator = opts.get_string("estimator", "sparsity");

  const auto grid = [&] {
    experiment e;
    e.with_topology(topo)
        .with_scenario("random_congestion")
        .with_scenario("concentrated_congestion")
        .with_scenario("no_independence")
        .with_scenario("srlg")
        .with_scenario("gilbert")
        .with_scenario("hotspot_drift")
        .with_estimator(estimator)
        .replicas(replicas)
        .intervals(intervals);
    return e;
  };

  batch_params params;
  params.threads = threads;
  params.base_seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));

  std::printf("grid_sched — %zu replicas x 6 scenario arms on %s, T=%zu, "
              "threads=%zu\n",
              replicas, topo.c_str(), intervals,
              thread_pool::resolve_threads(threads));

  grid_stats uncached_stats;
  clock_type::time_point start = clock_type::now();
  const batch_report uncached =
      grid().cache_topologies(false).run(params, &uncached_stats);
  const double uncached_seconds = seconds_since(start);

  grid_stats cached_stats;
  start = clock_type::now();
  const batch_report cached = grid().run(params, &cached_stats);
  const double cached_seconds = seconds_since(start);

  // The cache must be invisible in the results: bit-identical cells.
  const auto a = uncached.summarize();
  const auto b = cached.summarize();
  bool identical = a.size() == b.size();
  for (std::size_t i = 0; identical && i < a.size(); ++i) {
    identical = a[i].label == b[i].label && a[i].series == b[i].series &&
                a[i].metric == b[i].metric && a[i].mean == b[i].mean &&
                a[i].stddev == b[i].stddev;
  }
  const double speedup =
      cached_seconds > 0.0 ? uncached_seconds / cached_seconds : 0.0;
  std::printf("uncached: %.3fs (%zu cells, %zu stolen)\n", uncached_seconds,
              uncached_stats.cells, uncached_stats.steals);
  std::printf("cached:   %.3fs (%zu topology hits / %zu misses)\n",
              cached_seconds, cached_stats.topo_cache_hits,
              cached_stats.topo_cache_misses);
  std::printf("speedup %.2fx; aggregates %s\n", speedup,
              identical ? "BIT-IDENTICAL" : "DIFFER (BUG)");

  batch_report report;
  run_result row;
  row.label = "scheduler";
  row.seconds = uncached_seconds + cached_seconds;
  row.measurements = {
      {"uncached", "wall_seconds", uncached_seconds},
      {"cached", "wall_seconds", cached_seconds},
      {"scheduler", "speedup_cached_x", speedup},
      {"scheduler", "cells", static_cast<double>(cached_stats.cells)},
      {"scheduler", "runs", static_cast<double>(cached_stats.runs)},
      {"scheduler", "topo_cache_hits",
       static_cast<double>(cached_stats.topo_cache_hits)},
      {"scheduler", "topo_cache_misses",
       static_cast<double>(cached_stats.topo_cache_misses)},
      {"scheduler", "aggregates_identical", identical ? 1.0 : 0.0},
  };
  report.add(std::move(row));
  report.total_seconds = uncached_seconds + cached_seconds;
  maybe_write_bench_json(report, opts, "grid_sched",
                         {{"replicas", std::to_string(replicas)},
                          {"intervals", std::to_string(intervals)},
                          {"topo", topo},
                          {"estimator", estimator},
                          {"threads", std::to_string(threads)}});
  return identical ? 0 : 1;
}
