// Microbenchmarks for the linear-algebra substrate, including the
// design-choice ablation DESIGN.md calls out: Algorithm 2's incremental
// null-space update vs a full QR recompute per appended equation.
#include <benchmark/benchmark.h>

#include "ntom/linalg/nullspace.hpp"
#include "ntom/linalg/qr.hpp"
#include "ntom/linalg/solve.hpp"
#include "ntom/util/rng.hpp"

namespace {

ntom::matrix random_binary_matrix(std::size_t rows, std::size_t cols,
                                  double density, std::uint64_t seed) {
  ntom::rng rand(seed);
  ntom::matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = rand.bernoulli(density) ? 1.0 : 0.0;
    }
  }
  return m;
}

std::vector<double> random_binary_row(std::size_t cols, double density,
                                      ntom::rng& rand) {
  std::vector<double> row(cols, 0.0);
  for (auto& x : row) x = rand.bernoulli(density) ? 1.0 : 0.0;
  return row;
}

void bm_qr_factorize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ntom::matrix a = random_binary_matrix(n, n, 0.1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ntom::qr_factorize(a));
  }
}
BENCHMARK(bm_qr_factorize)->Arg(32)->Arg(64)->Arg(128);

void bm_null_space_basis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ntom::matrix a = random_binary_matrix(n / 2, n, 0.1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ntom::null_space_basis(a));
  }
}
BENCHMARK(bm_null_space_basis)->Arg(32)->Arg(64)->Arg(128);

/// Algorithm 2: append `k` rank-increasing rows, updating N incrementally.
void bm_nullspace_incremental(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 16;
  const ntom::matrix a = random_binary_matrix(n / 2, n, 0.1, 7);
  for (auto _ : state) {
    ntom::rng rand(11);
    ntom::matrix nsp = ntom::null_space_basis(a);
    for (std::size_t i = 0; i < k && nsp.cols() > 0; ++i) {
      const auto row = random_binary_row(n, 0.1, rand);
      nsp = ntom::null_space_update(nsp, row);
    }
    benchmark::DoNotOptimize(nsp);
  }
}
BENCHMARK(bm_nullspace_incremental)->Arg(64)->Arg(128);

/// Baseline: recompute the null space from scratch per appended row.
void bm_nullspace_recompute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 16;
  const ntom::matrix base = random_binary_matrix(n / 2, n, 0.1, 7);
  for (auto _ : state) {
    ntom::rng rand(11);
    ntom::matrix a = base;
    ntom::matrix nsp = ntom::null_space_basis(a);
    for (std::size_t i = 0; i < k && nsp.cols() > 0; ++i) {
      a.append_row(random_binary_row(n, 0.1, rand));
      nsp = ntom::null_space_basis(a);
    }
    benchmark::DoNotOptimize(nsp);
  }
}
BENCHMARK(bm_nullspace_recompute)->Arg(64)->Arg(128);

void bm_least_squares(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ntom::matrix a = random_binary_matrix(2 * n, n, 0.1, 7);
  ntom::rng rand(13);
  std::vector<double> b(2 * n);
  for (auto& x : b) x = -rand.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ntom::solve_least_squares(a, b));
  }
}
BENCHMARK(bm_least_squares)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
