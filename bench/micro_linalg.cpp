// Microbenchmarks for the linear-algebra substrate, including the
// design-choice ablation DESIGN.md calls out: Algorithm 2's incremental
// null-space update vs a full QR recompute per appended equation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "ntom/linalg/nullspace.hpp"
#include "ntom/linalg/qr.hpp"
#include "ntom/linalg/solve.hpp"
#include "ntom/linalg/sparse.hpp"
#include "ntom/util/rng.hpp"

namespace {

ntom::matrix random_binary_matrix(std::size_t rows, std::size_t cols,
                                  double density, std::uint64_t seed) {
  ntom::rng rand(seed);
  ntom::matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = rand.bernoulli(density) ? 1.0 : 0.0;
    }
  }
  return m;
}

std::vector<double> random_binary_row(std::size_t cols, double density,
                                      ntom::rng& rand) {
  std::vector<double> row(cols, 0.0);
  for (auto& x : row) x = rand.bernoulli(density) ? 1.0 : 0.0;
  return row;
}

void bm_qr_factorize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ntom::matrix a = random_binary_matrix(n, n, 0.1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ntom::qr_factorize(a));
  }
}
BENCHMARK(bm_qr_factorize)->Arg(32)->Arg(64)->Arg(128);

void bm_null_space_basis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ntom::matrix a = random_binary_matrix(n / 2, n, 0.1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ntom::null_space_basis(a));
  }
}
BENCHMARK(bm_null_space_basis)->Arg(32)->Arg(64)->Arg(128);

/// Algorithm 2: append `k` rank-increasing rows, updating N incrementally.
void bm_nullspace_incremental(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 16;
  const ntom::matrix a = random_binary_matrix(n / 2, n, 0.1, 7);
  for (auto _ : state) {
    ntom::rng rand(11);
    ntom::matrix nsp = ntom::null_space_basis(a);
    for (std::size_t i = 0; i < k && nsp.cols() > 0; ++i) {
      const auto row = random_binary_row(n, 0.1, rand);
      nsp = ntom::null_space_update(nsp, row);
    }
    benchmark::DoNotOptimize(nsp);
  }
}
BENCHMARK(bm_nullspace_incremental)->Arg(64)->Arg(128);

/// Baseline: recompute the null space from scratch per appended row.
void bm_nullspace_recompute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 16;
  const ntom::matrix base = random_binary_matrix(n / 2, n, 0.1, 7);
  for (auto _ : state) {
    ntom::rng rand(11);
    ntom::matrix a = base;
    ntom::matrix nsp = ntom::null_space_basis(a);
    for (std::size_t i = 0; i < k && nsp.cols() > 0; ++i) {
      a.append_row(random_binary_row(n, 0.1, rand));
      nsp = ntom::null_space_basis(a);
    }
    benchmark::DoNotOptimize(nsp);
  }
}
BENCHMARK(bm_nullspace_recompute)->Arg(64)->Arg(128);

void bm_least_squares(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ntom::matrix a = random_binary_matrix(2 * n, n, 0.1, 7);
  ntom::rng rand(13);
  std::vector<double> b(2 * n);
  for (auto& x : b) x = -rand.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ntom::solve_least_squares(a, b));
  }
}
BENCHMARK(bm_least_squares)->Arg(32)->Arg(64)->Arg(128);

/// Micro assertion: abort loudly if a benchmarked equivalence breaks —
/// a benchmark that silently measures a wrong result is worthless.
void micro_assert(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "micro assertion failed: %s\n", what);
    std::abort();
  }
}

/// Weighted 0/1 rows in CSR form, as the equation builders emit them.
ntom::sparse_matrix random_sparse_system(std::size_t rows, std::size_t cols,
                                         double density, std::uint64_t seed) {
  ntom::rng rand(seed);
  ntom::sparse_matrix m(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::size_t> idx;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rand.bernoulli(density)) idx.push_back(c);
    }
    m.append_row(idx, rand.uniform(0.5, 2.0));
  }
  return m;
}

/// Sparse-row least squares (the hot path after the CSR rewiring);
/// asserts the sparse and dense solves agree bit-for-bit.
void bm_least_squares_sparse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ntom::sparse_matrix a = random_sparse_system(2 * n, n, 0.1, 7);
  ntom::rng rand(13);
  std::vector<double> b(2 * n);
  for (auto& x : b) x = -rand.uniform();

  micro_assert(ntom::solve_least_squares(a, b).x ==
                   ntom::solve_least_squares(a.to_dense(), b).x,
               "sparse lstsq != dense lstsq");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ntom::solve_least_squares(a, b));
  }
}
BENCHMARK(bm_least_squares_sparse)->Arg(32)->Arg(64)->Arg(128);

/// Algorithm 1's inner test on sparse 0/1 candidate rows vs the old
/// dense staging; asserts both encodings agree before measuring.
void bm_nullspace_sparse_row_test(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ntom::matrix a = random_binary_matrix(n / 2, n, 0.1, 7);
  const ntom::matrix nsp = ntom::null_space_basis(a);

  ntom::rng rand(11);
  std::vector<std::vector<std::size_t>> rows;
  for (std::size_t r = 0; r < 64; ++r) {
    std::vector<std::size_t> idx;
    for (std::size_t c = 0; c < n; ++c) {
      if (rand.bernoulli(0.1)) idx.push_back(c);
    }
    rows.push_back(std::move(idx));
  }
  for (const auto& idx : rows) {
    std::vector<double> dense(n, 0.0);
    for (const std::size_t c : idx) dense[c] = 1.0;
    micro_assert(ntom::row_nullspace_product(idx, nsp) ==
                     ntom::row_nullspace_product(dense, nsp),
                 "sparse row product != dense row product");
  }

  for (auto _ : state) {
    for (const auto& idx : rows) {
      benchmark::DoNotOptimize(ntom::row_increases_rank(idx, nsp));
    }
  }
}
BENCHMARK(bm_nullspace_sparse_row_test)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
