// Reproduces Table 2: the assumptions, conditions, and approximations
// each Boolean Inference algorithm depends on — i.e., its sources of
// inaccuracy. This is static algorithm metadata, printed in the paper's
// layout; the experimental benches (fig3_inference) demonstrate the
// corresponding failure modes.
#include <iostream>

#include "ntom/exp/report.hpp"

int main() {
  using ntom::table_printer;

  std::cout << "Table 2 — Sources of inaccuracy for Boolean Inference "
               "algorithms\n"
            << "(X = the algorithm relies on it; Bayesian algorithms are "
               "split into\n"
            << " Step 1 = Probability Computation, Step 2 = Probabilistic "
               "Inference)\n\n";

  table_printer table({"Source", "Sparsity", "B-Indep s1", "B-Indep s2",
                       "B-Corr s1", "B-Corr s2"});
  table.add_row({"Separability", "X", "X", "X", "X", "X"});
  table.add_row({"E2E Monitoring", "X", "X", "X", "X", "X"});
  table.add_row({"Homogeneity", "X", "", "", "", ""});
  table.add_row({"Independence", "", "X", "X", "", ""});
  table.add_row({"Correlation Sets", "", "", "", "X", "X"});
  table.add_row({"Identifiability", "X", "X", "X", "", ""});
  table.add_row({"Identifiability++", "", "", "", "X", "X"});
  table.add_row({"Other approx./heuristic", "X", "", "X", "", "X"});
  table.print(std::cout);

  std::cout << "\nThe paper's shift (§4): run only B-Corr Step 1 "
               "(Correlation-complete), which needs\n"
            << "Separability + E2E Monitoring + Correlation Sets, no "
               "NP-complete step, and no\n"
            << "expected-value approximation.\n";
  return 0;
}
