// Reproduces Fig. 3(a) and 3(b): detection rate and false-positive rate
// of the three Boolean Inference algorithms (Sparsity,
// Bayesian-Independence, Bayesian-Correlation) under the five scenarios:
//
//   Random Congestion (Brite)      Concentrated Congestion (Brite)
//   No Independence (Brite)        No Stationarity (Brite)
//   Sparse Topology (Sparse + random congestion)
//
// 10% of links have a non-zero congestion probability (§3.2).
// Every arm is a (topology spec, scenario spec) pair resolved through
// the registries. Runs on the batched experiment engine: scenarios
// (x --replicas seed replications) fan out across --threads workers with
// per-run seeds derived from --seed and the run index, so results are
// independent of the thread count. Run with --scale=paper for the
// paper's dimensions (slower); default is a reduced-scale configuration
// with the same qualitative shape. --csv=<path> dumps the per-run
// series, --summary-csv=<path> the aggregated mean/stddev/percentiles,
// --json[=<path>] a machine-readable BENCH_*.json summary.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ntom/exp/batch.hpp"
#include "ntom/exp/evals.hpp"
#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/util/flags.hpp"
#include "ntom/util/thread_pool.hpp"

namespace {

std::vector<ntom::run_spec> make_specs(bool paper_scale, std::size_t intervals,
                                       std::size_t replicas) {
  using namespace ntom;
  const auto topo = [paper_scale](const char* name) {
    topology_spec s(name);
    return paper_scale ? s.with_option("scale", "paper") : s;
  };

  // The five Fig. 3 arms as (label, topology spec, scenario spec).
  struct arm {
    const char* label;
    topology_spec topo;
    scenario_spec scenario;
  };
  const std::vector<arm> arms = {
      {"Random Congestion", topo("brite"), "random_congestion"},
      {"Concentrated Congestion", topo("brite"), "concentrated_congestion"},
      {"No Independence", topo("brite"), "no_independence"},
      {"No Stationarity", topo("brite"), "no_stationarity"},
      {"Sparse Topology", topo("sparse"), "random_congestion"},
  };

  // Replicas repeat each scenario label. All arms of one replica share
  // a seed_group, so the algorithms are compared on the same topology
  // within a replica (as in the paper); each replica draws a new one.
  std::vector<run_spec> specs;
  for (std::size_t r = 0; r < replicas; ++r) {
    for (const arm& a : arms) {
      run_config c;
      c.topo = a.topo;
      c.scenario = a.scenario;
      c.sim.intervals = intervals;
      run_spec spec{a.label, std::move(c)};
      spec.seed_group = r;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::vector<ntom::measurement> evaluate(const ntom::run_config& config,
                                        const ntom::run_artifacts& run) {
  using namespace ntom;
  std::fprintf(stderr, "[fig3] %s/%s: %s\n",
               scenario_label(config.scenario).c_str(),
               topology_label(config.topo).c_str(),
               run.topo().describe().c_str());
  return boolean_inference_eval(config, run);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const bool paper_scale = opts.get_string("scale", "small") == "paper";
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const auto intervals = static_cast<std::size_t>(
      opts.get_int("intervals", paper_scale ? 1000 : 300));
  const auto replicas =
      static_cast<std::size_t>(opts.get_int("replicas", 1));
  const auto threads = static_cast<std::size_t>(opts.get_int("threads", 0));

  batch_params params;
  params.threads = threads;
  params.base_seed = seed;
  const std::vector<run_spec> specs =
      make_specs(paper_scale, intervals, replicas);

  std::cout << "Fig. 3 — Boolean Inference accuracy "
            << "(scale=" << (paper_scale ? "paper" : "small")
            << ", T=" << intervals << ", seed=" << seed
            << ", replicas=" << replicas
            << ", threads=" << thread_pool::resolve_threads(threads) << ")\n\n";

  const batch_report report = run_batch(specs, evaluate, params);

  const std::vector<std::string> algorithms = {"Sparsity", "Bayes-Indep",
                                               "Bayes-Corr"};
  table_printer detection({"Scenario", "Sparsity", "Bayes-Indep",
                           "Bayes-Corr"});
  table_printer false_pos({"Scenario", "Sparsity", "Bayes-Indep",
                           "Bayes-Corr"});
  std::vector<std::string> seen;
  for (const run_result& run : report.runs()) {
    if (std::find(seen.begin(), seen.end(), run.label) != seen.end()) continue;
    seen.push_back(run.label);
    std::vector<double> det_row, fp_row;
    for (const std::string& algo : algorithms) {
      det_row.push_back(report.mean_of(run.label, algo, "detection_rate"));
      fp_row.push_back(report.mean_of(run.label, algo, "false_positive_rate"));
    }
    detection.add_row(run.label, det_row);
    false_pos.add_row(run.label, fp_row);
  }

  std::cout << "(a) Detection Rate\n";
  detection.print(std::cout);
  std::cout << "\n(b) False Positive Rate\n";
  false_pos.print(std::cout);
  std::printf("\n%zu runs in %.2fs wall clock\n", report.runs().size(),
              report.total_seconds);

  if (opts.has("csv")) report.write_runs_csv(opts.get_string("csv", "fig3.csv"));
  if (opts.has("summary-csv")) {
    report.write_summary_csv(opts.get_string("summary-csv", "fig3_summary.csv"));
  }
  maybe_write_bench_json(
      report, opts, "fig3_inference",
      {{"scale", paper_scale ? "paper" : "small"},
       {"intervals", std::to_string(intervals)},
       {"seed", std::to_string(seed)},
       {"replicas", std::to_string(replicas)},
       {"threads", std::to_string(thread_pool::resolve_threads(threads))}});
  return 0;
}
