// Reproduces Fig. 3(a) and 3(b): detection rate and false-positive rate
// of the three Boolean Inference algorithms (Sparsity,
// Bayesian-Independence, Bayesian-Correlation) under the five scenarios:
//
//   Random Congestion (Brite)      Concentrated Congestion (Brite)
//   No Independence (Brite)        No Stationarity (Brite)
//   Sparse Topology (Sparse + random congestion)
//
// 10% of links have a non-zero congestion probability (§3.2).
// Run with --scale=paper for the paper's dimensions (slower); default
// is a reduced-scale configuration with the same qualitative shape.
// --csv=<path> additionally dumps the series.
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/infer/bayes_correlation.hpp"
#include "ntom/infer/bayes_independence.hpp"
#include "ntom/infer/sparsity.hpp"
#include "ntom/util/csv.hpp"
#include "ntom/util/flags.hpp"

namespace {

struct scenario_row {
  std::string label;
  ntom::run_config config;
};

std::vector<scenario_row> make_rows(bool paper_scale, std::uint64_t seed,
                                    std::size_t intervals) {
  using namespace ntom;
  run_config base;
  base.brite = paper_scale ? topogen::brite_params::paper_scale()
                           : topogen::brite_params{};
  base.sparse = paper_scale ? topogen::sparse_params::paper_scale()
                            : topogen::sparse_params{};
  base.brite.seed = seed;
  base.sparse.seed = seed + 1;
  base.scenario_opts.seed = seed + 2;
  base.sim.seed = seed + 3;
  base.sim.intervals = intervals;

  std::vector<scenario_row> rows;
  {
    run_config c = base;
    c.scenario = scenario_kind::random_congestion;
    rows.push_back({"Random Congestion", c});
  }
  {
    run_config c = base;
    c.scenario = scenario_kind::concentrated_congestion;
    rows.push_back({"Concentrated Congestion", c});
  }
  {
    run_config c = base;
    c.scenario = scenario_kind::no_independence;
    rows.push_back({"No Independence", c});
  }
  {
    run_config c = base;
    c.scenario = scenario_kind::no_independence;
    c.scenario_opts.nonstationary = true;
    rows.push_back({"No Stationarity", c});
  }
  {
    run_config c = base;
    c.topo = topology_kind::sparse;
    c.scenario = scenario_kind::random_congestion;
    rows.push_back({"Sparse Topology", c});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const bool paper_scale = opts.get_string("scale", "small") == "paper";
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const auto intervals = static_cast<std::size_t>(
      opts.get_int("intervals", paper_scale ? 1000 : 300));

  std::cout << "Fig. 3 — Boolean Inference accuracy "
            << "(scale=" << (paper_scale ? "paper" : "small")
            << ", T=" << intervals << ", seed=" << seed << ")\n\n";

  table_printer detection(
      {"Scenario", "Sparsity", "Bayes-Indep", "Bayes-Corr"});
  table_printer false_pos(
      {"Scenario", "Sparsity", "Bayes-Indep", "Bayes-Corr"});
  std::optional<csv_writer> csv;
  if (opts.has("csv")) {
    csv.emplace(opts.get_string("csv", "fig3.csv"));
    csv->write_header({"scenario", "algorithm", "detection_rate",
                       "false_positive_rate"});
  }

  for (auto& [label, config] : make_rows(paper_scale, seed, intervals)) {
    const run_artifacts run = prepare_run(config);
    std::fprintf(stderr, "[fig3] %s: %s\n", label.c_str(),
                 run.topo.describe().c_str());

    const inference_metrics sparsity_m =
        score_inference(run, [&](const bitvec& congested) {
          return infer_sparsity(run.topo,
                                make_observation(run.topo, congested));
        });

    const bayes_independence_inferencer indep(run.topo, run.data);
    const inference_metrics indep_m = score_inference(
        run, [&](const bitvec& congested) { return indep.infer(congested); });

    const bayes_correlation_inferencer corr(run.topo, run.data);
    const inference_metrics corr_m = score_inference(
        run, [&](const bitvec& congested) { return corr.infer(congested); });

    detection.add_row(label, {sparsity_m.detection_rate,
                              indep_m.detection_rate, corr_m.detection_rate});
    false_pos.add_row(label,
                      {sparsity_m.false_positive_rate,
                       indep_m.false_positive_rate,
                       corr_m.false_positive_rate});
    if (csv) {
      csv->write_row(label + "/Sparsity",
                     {sparsity_m.detection_rate, sparsity_m.false_positive_rate});
      csv->write_row(label + "/Bayesian-Independence",
                     {indep_m.detection_rate, indep_m.false_positive_rate});
      csv->write_row(label + "/Bayesian-Correlation",
                     {corr_m.detection_rate, corr_m.false_positive_rate});
    }
  }

  std::cout << "(a) Detection Rate\n";
  detection.print(std::cout);
  std::cout << "\n(b) False Positive Rate\n";
  false_pos.print(std::cout);
  return 0;
}
