// Reproduces Fig. 3(a) and 3(b): detection rate and false-positive rate
// of the three Boolean Inference algorithms (Sparsity,
// Bayesian-Independence, Bayesian-Correlation) under the five scenarios:
//
//   Random Congestion (Brite)      Concentrated Congestion (Brite)
//   No Independence (Brite)        No Stationarity (Brite)
//   Sparse Topology (Sparse + random congestion)
//
// 10% of links have a non-zero congestion probability (§3.2).
// Runs on the batched experiment engine: scenarios (x --replicas seed
// replications) fan out across --threads workers with per-run seeds
// derived from --seed and the run index, so results are independent of
// the thread count. Run with --scale=paper for the paper's dimensions
// (slower); default is a reduced-scale configuration with the same
// qualitative shape. --csv=<path> dumps the per-run series,
// --summary-csv=<path> the aggregated mean/stddev/percentiles.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ntom/exp/batch.hpp"
#include "ntom/exp/evals.hpp"
#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/util/flags.hpp"
#include "ntom/util/thread_pool.hpp"

namespace {

std::vector<ntom::run_spec> make_specs(bool paper_scale, std::size_t intervals,
                                       std::size_t replicas) {
  using namespace ntom;
  run_config base;
  base.brite = paper_scale ? topogen::brite_params::paper_scale()
                           : topogen::brite_params{};
  base.sparse = paper_scale ? topogen::sparse_params::paper_scale()
                            : topogen::sparse_params{};
  base.sim.intervals = intervals;

  std::vector<run_spec> scenarios;
  {
    run_config c = base;
    c.scenario = scenario_kind::random_congestion;
    scenarios.push_back({"Random Congestion", c});
  }
  {
    run_config c = base;
    c.scenario = scenario_kind::concentrated_congestion;
    scenarios.push_back({"Concentrated Congestion", c});
  }
  {
    run_config c = base;
    c.scenario = scenario_kind::no_independence;
    scenarios.push_back({"No Independence", c});
  }
  {
    run_config c = base;
    c.scenario = scenario_kind::no_independence;
    c.scenario_opts.nonstationary = true;
    scenarios.push_back({"No Stationarity", c});
  }
  {
    run_config c = base;
    c.topo = topology_kind::sparse;
    c.scenario = scenario_kind::random_congestion;
    scenarios.push_back({"Sparse Topology", c});
  }

  // Replicas repeat each scenario label. All arms of one replica share
  // a seed_group, so the algorithms are compared on the same topology
  // within a replica (as in the paper); each replica draws a new one.
  std::vector<run_spec> specs;
  for (std::size_t r = 0; r < replicas; ++r) {
    for (run_spec s : scenarios) {
      s.seed_group = r;
      specs.push_back(std::move(s));
    }
  }
  return specs;
}

std::vector<ntom::measurement> evaluate(const ntom::run_config& config,
                                        const ntom::run_artifacts& run) {
  using namespace ntom;
  std::fprintf(stderr, "[fig3] %s%s/%s: %s\n", scenario_name(config.scenario),
               config.scenario_opts.nonstationary ? " (nonstationary)" : "",
               topology_kind_name(config.topo), run.topo.describe().c_str());
  return boolean_inference_eval(config, run);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const bool paper_scale = opts.get_string("scale", "small") == "paper";
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const auto intervals = static_cast<std::size_t>(
      opts.get_int("intervals", paper_scale ? 1000 : 300));
  const auto replicas =
      static_cast<std::size_t>(opts.get_int("replicas", 1));
  const auto threads = static_cast<std::size_t>(opts.get_int("threads", 0));

  batch_params params;
  params.threads = threads;
  params.base_seed = seed;
  const std::vector<run_spec> specs =
      make_specs(paper_scale, intervals, replicas);

  std::cout << "Fig. 3 — Boolean Inference accuracy "
            << "(scale=" << (paper_scale ? "paper" : "small")
            << ", T=" << intervals << ", seed=" << seed
            << ", replicas=" << replicas
            << ", threads=" << thread_pool::resolve_threads(threads) << ")\n\n";

  const batch_report report = run_batch(specs, evaluate, params);

  const std::vector<std::string> algorithms = {"Sparsity", "Bayes-Indep",
                                               "Bayes-Corr"};
  table_printer detection({"Scenario", "Sparsity", "Bayes-Indep",
                           "Bayes-Corr"});
  table_printer false_pos({"Scenario", "Sparsity", "Bayes-Indep",
                           "Bayes-Corr"});
  std::vector<std::string> seen;
  for (const run_result& run : report.runs()) {
    if (std::find(seen.begin(), seen.end(), run.label) != seen.end()) continue;
    seen.push_back(run.label);
    std::vector<double> det_row, fp_row;
    for (const std::string& algo : algorithms) {
      det_row.push_back(report.mean_of(run.label, algo, "detection_rate"));
      fp_row.push_back(report.mean_of(run.label, algo, "false_positive_rate"));
    }
    detection.add_row(run.label, det_row);
    false_pos.add_row(run.label, fp_row);
  }

  std::cout << "(a) Detection Rate\n";
  detection.print(std::cout);
  std::cout << "\n(b) False Positive Rate\n";
  false_pos.print(std::cout);
  std::printf("\n%zu runs in %.2fs wall clock\n", report.runs().size(),
              report.total_seconds);

  if (opts.has("csv")) report.write_runs_csv(opts.get_string("csv", "fig3.csv"));
  if (opts.has("summary-csv")) {
    report.write_summary_csv(opts.get_string("summary-csv", "fig3_summary.csv"));
  }
  return 0;
}
