// Microbenchmark + self-check for the dispatched SIMD bit kernels
// (util/simd): per-kernel throughput at every dispatch level available
// on the host, plus the cache-blocked bit transpose, plus a
// scalar-vs-SIMD bit-identity sweep.
//
//   ./micro_kernels                      # defaults: 65536-word arrays
//   ./micro_kernels --words=1048576 --json
//
// --json[=<path>] writes BENCH_micro_kernels.json. The per-level
// throughput cells (<level>_gbps, speedup_vs_scalar_x, Melem/s) are
// recorded for trend reading, never gated — they differ per machine and
// per ISA. The one gated headline cell is identity/identical: every
// available level must agree bit-for-bit with the scalar reference on
// ragged sizes, asserted here and exact-checked by tools/bench_check.py.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ntom/exp/report.hpp"
#include "ntom/util/bit_matrix.hpp"
#include "ntom/util/crc32.hpp"
#include "ntom/util/flags.hpp"
#include "ntom/util/rng.hpp"
#include "ntom/util/simd/simd.hpp"

namespace {

using clock_type = std::chrono::steady_clock;
namespace simd = ntom::simd;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

std::vector<std::uint64_t> random_words(std::size_t n, std::uint64_t seed) {
  ntom::rng r(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) w = r.next_u64();
  return out;
}

/// Repeats `op` until ~50 ms have elapsed; returns seconds per call.
template <typename Op>
double time_op(Op&& op) {
  op();  // warm-up (page-in, dispatch init)
  std::size_t iters = 0;
  const auto t0 = clock_type::now();
  double elapsed = 0.0;
  do {
    op();
    ++iters;
    elapsed = seconds_since(t0);
  } while (elapsed < 0.05);
  return elapsed / static_cast<double>(iters);
}

/// Defeats dead-code elimination of the popcount results.
volatile std::size_t g_sink = 0;

struct kernel_case {
  const char* name;
  std::size_t bytes_per_word;  // bytes touched per array word
  std::size_t (*run)(const std::uint64_t*, const std::uint64_t*,
                     const std::uint64_t*, std::uint64_t*, std::size_t);
};

std::size_t run_popcount_words(const std::uint64_t* a, const std::uint64_t*,
                               const std::uint64_t*, std::uint64_t*,
                               std::size_t n) {
  return simd::popcount_words(a, n);
}
std::size_t run_popcount_and2(const std::uint64_t* a, const std::uint64_t* b,
                              const std::uint64_t*, std::uint64_t*,
                              std::size_t n) {
  return simd::popcount_and2(a, b, n);
}
std::size_t run_popcount_and3(const std::uint64_t* a, const std::uint64_t* b,
                              const std::uint64_t* c, std::uint64_t*,
                              std::size_t n) {
  return simd::popcount_and3(a, b, c, n);
}
std::size_t run_andnot_count(const std::uint64_t* a, const std::uint64_t* b,
                             const std::uint64_t*, std::uint64_t*,
                             std::size_t n) {
  return simd::andnot_count(a, b, n);
}
std::size_t run_or_accumulate(const std::uint64_t* a, const std::uint64_t*,
                              const std::uint64_t*, std::uint64_t* dst,
                              std::size_t n) {
  simd::or_accumulate(dst, a, n);
  return dst[n / 2];
}

constexpr kernel_case kernel_cases[] = {
    {"popcount_words", 8, run_popcount_words},
    {"popcount_and2", 16, run_popcount_and2},
    {"popcount_and3", 24, run_popcount_and3},
    {"andnot_count", 16, run_andnot_count},
    {"or_accumulate", 24, run_or_accumulate},  // read dst+src, write dst
};

/// Every kernel x every level vs the scalar reference on ragged sizes.
bool identity_sweep() {
  const std::size_t sizes[] = {0, 1, 5, 63, 64, 65, 129, 1000, 4097};
  bool ok = true;
  for (const std::size_t n : sizes) {
    const auto a = random_words(n, 11 + n);
    const auto b = random_words(n, 22 + n);
    const auto c = random_words(n, 33 + n);
    const auto base = random_words(n, 44 + n);

    simd::set_level(simd::level::scalar);
    const std::size_t ref_w = simd::popcount_words(a.data(), n);
    const std::size_t ref_2 = simd::popcount_and2(a.data(), b.data(), n);
    const std::size_t ref_3 =
        simd::popcount_and3(a.data(), b.data(), c.data(), n);
    const std::size_t ref_an = simd::andnot_count(a.data(), b.data(), n);
    auto ref_or = base;
    simd::or_accumulate(ref_or.data(), a.data(), n);

    for (const simd::level l : simd::available_levels()) {
      simd::set_level(l);
      ok &= simd::popcount_words(a.data(), n) == ref_w;
      ok &= simd::popcount_and2(a.data(), b.data(), n) == ref_2;
      ok &= simd::popcount_and3(a.data(), b.data(), c.data(), n) == ref_3;
      ok &= simd::andnot_count(a.data(), b.data(), n) == ref_an;
      auto dst = base;
      simd::or_accumulate(dst.data(), a.data(), n);
      ok &= dst == ref_or;
    }
  }
  // CRC-32: the CLMUL folding core (active at any non-scalar level)
  // against the slicing-by-8 reference, on ragged byte lengths.
  {
    const auto pool = random_words(520, 77);
    const auto* bytes = reinterpret_cast<const unsigned char*>(pool.data());
    const std::size_t lens[] = {0, 1, 63, 64, 65, 127, 128, 200, 4096, 4133};
    for (const std::size_t len : lens) {
      simd::set_level(simd::level::scalar);
      const std::uint32_t ref = ntom::crc32(bytes, len, 0x5EED);
      for (const simd::level l : simd::available_levels()) {
        simd::set_level(l);
        ok &= ntom::crc32(bytes, len, 0x5EED) == ref;
      }
    }
  }
  // Blocked transpose: round-trip plus spot bits on a ragged shape.
  ntom::bit_matrix m(1030, 517);
  ntom::rng r(55);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t col = 0; col < m.cols(); ++col) {
      if (r.next_u64() & 1u) m.set(i, col);
    }
  }
  const ntom::bit_matrix t = m.transposed();
  ok &= t.transposed() == m;
  for (std::size_t i = 0; i < m.rows(); i += 97) {
    for (std::size_t col = 0; col < m.cols(); col += 83) {
      ok &= m.test(i, col) == t.test(col, i);
    }
  }
  simd::set_level(simd::detected_level());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const auto words = static_cast<std::size_t>(opts.get_int("words", 65536));
  const auto tdim = static_cast<std::size_t>(opts.get_int("tdim", 4096));

  const auto a = random_words(words, 1);
  const auto b = random_words(words, 2);
  const auto c = random_words(words, 3);
  std::vector<std::uint64_t> dst = random_words(words, 4);

  const auto levels = simd::available_levels();
  std::printf("micro_kernels: %zu-word arrays (%.1f KiB), detected ISA %s\n\n",
              words, static_cast<double>(words) * 8.0 / 1024.0,
              simd::level_name(simd::detected_level()));

  batch_report report;
  run_result result;
  result.index = 0;
  result.label = "kernels";
  double total_seconds = 0.0;

  for (const kernel_case& kc : kernel_cases) {
    double scalar_gbps = 0.0;
    for (const simd::level l : levels) {
      simd::set_level(l);
      const double secs = time_op([&] {
        g_sink = g_sink + kc.run(a.data(), b.data(), c.data(), dst.data(),
                                 words);
      });
      total_seconds += secs;
      const double gbps =
          static_cast<double>(words) * static_cast<double>(kc.bytes_per_word) /
          secs / 1e9;
      if (l == simd::level::scalar) scalar_gbps = gbps;
      const double speedup = scalar_gbps > 0.0 ? gbps / scalar_gbps : 0.0;
      std::printf("  %-16s %-7s %8.2f GB/s  (%5.2fx vs scalar)\n", kc.name,
                  simd::level_name(l), gbps, speedup);
      result.measurements.push_back(
          {kc.name, std::string(simd::level_name(l)) + "_gbps", gbps});
      if (l != simd::level::scalar) {
        result.measurements.push_back(
            {kc.name,
             std::string(simd::level_name(l)) + "_speedup_vs_scalar_x",
             speedup});
      }
    }
    std::printf("\n");
  }
  simd::set_level(simd::detected_level());

  // CRC-32: slicing-by-8 reference vs the CLMUL folding core the trace
  // frames go through (any non-scalar level dispatches to it).
  {
    const std::size_t bytes_len = words * 8;
    const auto* bytes = reinterpret_cast<const unsigned char*>(a.data());
    simd::set_level(simd::level::scalar);
    const double scalar_secs = time_op(
        [&] { g_sink = g_sink + crc32(bytes, bytes_len); });
    const double scalar_gbps =
        static_cast<double>(bytes_len) / scalar_secs / 1e9;
    total_seconds += scalar_secs;
    std::printf("  %-16s %-7s %8.2f GB/s\n", "crc32", "scalar", scalar_gbps);
    result.measurements.push_back({"crc32", "scalar_gbps", scalar_gbps});
    simd::set_level(simd::detected_level());
    if (simd::crc32_fold() != nullptr) {
      const double clmul_secs = time_op(
          [&] { g_sink = g_sink + crc32(bytes, bytes_len); });
      const double clmul_gbps =
          static_cast<double>(bytes_len) / clmul_secs / 1e9;
      total_seconds += clmul_secs;
      std::printf("  %-16s %-7s %8.2f GB/s  (%5.2fx vs scalar)\n", "crc32",
                  "clmul", clmul_gbps, clmul_gbps / scalar_gbps);
      result.measurements.push_back({"crc32", "clmul_gbps", clmul_gbps});
      result.measurements.push_back(
          {"crc32", "clmul_speedup_vs_scalar_x", clmul_gbps / scalar_gbps});
    }
    std::printf("\n");
  }

  // Cache-blocked transpose (level-independent: pure shuffle work).
  {
    bit_matrix m(tdim, tdim);
    rng r(6);
    for (std::size_t i = 0; i < tdim; ++i) {
      for (std::size_t w = 0; w < tdim; w += 61) m.set(i, w);
    }
    (void)r;
    bit_matrix out;
    const double secs = time_op([&] { out = m.transposed(); });
    total_seconds += secs;
    const double melems =
        static_cast<double>(tdim) * static_cast<double>(tdim) / secs / 1e6;
    const double gbps = 2.0 * static_cast<double>(tdim) *
                        static_cast<double>(tdim) / 8.0 / secs / 1e9;
    std::printf("  %-16s %-7s %8.2f GB/s  (%.0f Mbit/s elements)\n",
                "transpose", "blocked", gbps, melems);
    result.measurements.push_back({"transpose", "blocked_gbps", gbps});
    result.measurements.push_back({"transpose", "melems_per_s", melems});
  }

  // Identity self-check: the gated headline cell. Any level disagreeing
  // with scalar on any ragged size fails the binary and the gate.
  const bool identical = identity_sweep();
  std::printf("\n  scalar-vs-SIMD identity sweep %s\n",
              identical ? "BIT-IDENTICAL" : "DIFFER (BUG)");
  result.measurements.push_back(
      {"identity", "identical", identical ? 1.0 : 0.0});

  result.seconds = total_seconds;
  report.total_seconds = total_seconds;
  report.add(std::move(result));
  maybe_write_bench_json(report, opts, "micro_kernels",
                         {{"words", std::to_string(words)},
                          {"tdim", std::to_string(tdim)},
                          {"detected", simd::level_name(
                                           simd::detected_level())}});
  return identical ? 0 : 1;
}
