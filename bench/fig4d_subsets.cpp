// Reproduces Fig. 4(d): mean absolute error of Correlation-complete in
// the "No Independence" scenario, when computing the congestion
// probability of (i) individual links and (ii) multi-link correlation
// subsets, on Brite and Sparse topologies. The paper's point: the
// subset probabilities — which reveal which links within a peer are
// actually correlated — come out about as accurate as the link
// probabilities (mean error <= ~0.1).
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>

#include "ntom/corr/correlation.hpp"
#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/tomo/correlation_complete.hpp"
#include "ntom/util/csv.hpp"
#include "ntom/util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const bool paper_scale = opts.get_string("scale", "small") == "paper";
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const auto intervals = static_cast<std::size_t>(
      opts.get_int("intervals", paper_scale ? 1000 : 300));

  std::cout << "Fig. 4(d) — Correlation-complete: links vs correlation "
            << "subsets (No Independence, scale="
            << (paper_scale ? "paper" : "small") << ", T=" << intervals
            << ", seed=" << seed << ")\n\n";

  table_printer table({"Topology", "links", "correlation subsets",
                       "identifiable subsets"});
  std::optional<csv_writer> csv;
  if (opts.has("csv")) {
    csv.emplace(opts.get_string("csv", "fig4d.csv"));
    csv->write_header({"topology", "link_error", "subset_error",
                       "identifiable_fraction"});
  }

  for (const char* topo_name : {"brite", "sparse"}) {
    run_config config;
    config.topo = topology_spec(topo_name);
    if (paper_scale) config.topo = config.topo.with_option("scale", "paper");
    config.topo_seed = std::string(topo_name) == "brite" ? seed : seed + 1;
    config.scenario = "no_independence,nonstationary";
    config.scenario_opts.seed = seed + 2;
    config.sim.intervals = intervals;
    config.sim.seed = seed + 3;
    const std::string topo_label_str = topology_label(config.topo);

    const run_artifacts run = prepare_run(config);
    const ground_truth truth = run.make_truth();
    const path_observations obs(run.data);
    const bitvec potcong =
        potentially_congested_links(run.topo(), obs.always_good_paths());
    std::fprintf(stderr, "[fig4d] %s: %s\n", topo_label_str.c_str(),
                 run.topo().describe().c_str());

    const auto complete = compute_correlation_complete(run.topo(), run.data);
    const double link_err = mean_of(link_absolute_errors(
        run.topo(), truth, complete.estimates.to_link_estimates(), potcong));
    const double subset_err = mean_of(
        subset_absolute_errors(run.topo(), truth, complete.estimates, 2));
    const double ident = complete.estimates.identifiable_fraction();

    table.add_row(topo_label_str, {link_err, subset_err, ident});
    if (csv) {
      csv->write_row(topo_label_str, {link_err, subset_err, ident});
    }
  }
  table.print(std::cout);
  return 0;
}
