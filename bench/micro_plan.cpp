// Probe-budget planning bench (ISSUE 7): detection-rate-vs-budget
// curves for the registered probe policies across the correlated-
// failure scenario suite, plus the two deterministic contracts the
// bench gate holds — every policy at frac=1.0 is bit-identical to the
// unmasked pipeline, and the info_gain planner beats uniform sampling
// at equal partial budget on at least 3 scenarios.
//
//   ./micro_plan                       # defaults: T = 320, chunk = 16
//   ./micro_plan --intervals=640 --json --csv=plan_curves.csv
//
// --json[=<path>] writes BENCH_micro_plan.json. Gated cells: every
// per-scenario detection_rate point of the curves (deterministic in
// the seeds at fixed chunk size), plan/headline/wins, and
// plan/headline/full_budget_identical (exact).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "ntom/exp/evals.hpp"
#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/util/flags.hpp"

namespace {

struct scenario_arm {
  const char* key;   // aggregation label (short).
  const char* spec;  // registered scenario spec.
};

// The correlated-failure scenario suite (PR 4) — every registered
// congestion scenario, short keys for the table.
constexpr scenario_arm kScenarios[] = {
    {"random", "random_congestion"},
    {"concentrated", "concentrated_congestion"},
    {"noindep", "no_independence"},
    {"srlg", "srlg"},
    {"gilbert", "gilbert"},
    {"hotspot", "hotspot_drift"},
    {"nostat", "no_stationarity"},
};

constexpr double kBudgets[] = {0.05, 0.10, 0.25, 0.50, 1.0};

std::string budget_tag(double frac) {
  return std::to_string(
      static_cast<int>(std::lround(frac * 100.0)));
}

std::string policy_spec_for(const std::string& name, double frac) {
  std::string s = name + ",frac=" + std::to_string(frac);
  if (name == "uniform") s += ",seed=9";
  return s;
}

/// Exact row-set equality — the frac=1.0 bit-identity contract.
bool rows_identical(const std::vector<ntom::measurement>& a,
                    const std::vector<ntom::measurement>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].series != b[i].series || a[i].metric != b[i].metric ||
        a[i].value != b[i].value) {
      return false;
    }
  }
  return true;
}

double rate_of(const std::vector<ntom::measurement>& rows,
               const std::string& series, const std::string& metric) {
  for (const ntom::measurement& m : rows) {
    if (m.series == series && m.metric == metric) return m.value;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const auto intervals =
      static_cast<std::size_t>(opts.get_int("intervals", 320));
  const auto chunk = static_cast<std::size_t>(opts.get_int("chunk", 16));

  // Small fixed grid: one topology, the scenario suite, two streaming
  // Boolean estimators. All seeds are pinned — the curves are exact.
  const estimator_eval_options eval_options{/*boolean_metrics=*/true,
                                            /*link_error_metrics=*/false};
  const batch_eval_fn eval =
      estimator_eval({"sparsity", "bayes-indep"}, eval_options);
  const std::vector<std::string> policies = {"uniform", "round_robin",
                                             "info_gain"};

  batch_report report;
  std::size_t run_index = 0;
  bool full_identical = true;
  std::size_t wins = 0;

  table_printer table({"Scenario", "Policy", "Budget%", "DR Sparsity",
                       "DR Bayes-Indep"});
  const auto t0 = std::chrono::steady_clock::now();

  std::shared_ptr<const topology> shared_topo;
  for (std::size_t s = 0; s < std::size(kScenarios); ++s) {
    const scenario_arm& arm = kScenarios[s];
    run_config base;
    base.topo = "brite,n=10,hosts=30,paths=60";
    base.topo_seed = 3;
    base.scenario = arm.spec;
    base.scenario_opts.seed = 100 + s;
    base.sim.seed = 57 + s;
    base.sim.intervals = intervals;
    base.sim.packets_per_path = 40;
    base.stream.enabled = true;  // the unmasked reference streams too,
                                 // so frac=1.0 comparisons are
                                 // like-for-like at the same chunking.
    base.stream.chunk_intervals = chunk;

    const auto evaluate = [&](const std::string& policy) {
      run_config config = base;
      config.plan.policy = policy;
      config.reconcile();
      const run_artifacts run = prepare_topology(config, shared_topo);
      if (shared_topo == nullptr) shared_topo = run.topo_ptr;
      return eval(config, run);
    };

    const std::vector<measurement> unmasked = evaluate("");
    table.add_row({arm.key, "unmasked", "100",
                   format_fixed(rate_of(unmasked, "Sparsity",
                                        "detection_rate")),
                   format_fixed(rate_of(unmasked, "Bayes-Indep",
                                        "detection_rate"))});

    run_result result;
    result.index = run_index++;
    result.label = arm.key;
    for (const measurement& m : unmasked) {
      result.measurements.push_back(
          {"unmasked:" + m.series, m.metric, m.value});
    }

    // Mean detection rate over the partial budgets — the per-scenario
    // planner comparison behind the `wins` headline.
    double uniform_mean = 0.0;
    double info_gain_mean = 0.0;
    std::size_t partial_points = 0;

    for (const std::string& policy : policies) {
      for (const double frac : kBudgets) {
        const std::vector<measurement> rows =
            evaluate(policy_spec_for(policy, frac));
        const std::string tag = policy + "@" + budget_tag(frac);
        for (const measurement& m : rows) {
          result.measurements.push_back(
              {tag + ":" + m.series, m.metric, m.value});
        }
        const double dr_sparsity =
            rate_of(rows, "Sparsity", "detection_rate");
        const double dr_bayes =
            rate_of(rows, "Bayes-Indep", "detection_rate");
        table.add_row({arm.key, policy, budget_tag(frac),
                       format_fixed(dr_sparsity), format_fixed(dr_bayes)});
        if (frac >= 1.0) {
          // Contract 1: a full budget is a zero-copy pass-through —
          // bit-identical to the unmasked pipeline, every metric.
          if (!rows_identical(rows, unmasked)) {
            std::fprintf(stderr,
                         "micro_plan: %s at frac=1.0 diverged from the "
                         "unmasked pipeline on scenario %s\n",
                         policy.c_str(), arm.key);
            full_identical = false;
          }
        } else {
          if (policy == "uniform") {
            uniform_mean += dr_bayes;
            ++partial_points;
          } else if (policy == "info_gain") {
            info_gain_mean += dr_bayes;
          }
        }
      }
    }
    if (partial_points > 0 && info_gain_mean > uniform_mean) ++wins;
    report.add(std::move(result));
  }

  const double total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("micro_plan: %zu scenarios x {unmasked + %zu policies x %zu "
              "budgets}, T=%zu, chunk=%zu (%.2f s)\n\n",
              std::size(kScenarios), policies.size(), std::size(kBudgets),
              intervals, chunk, total_seconds);
  table.print(std::cout);
  std::printf("\n  full-budget bit-identity        %8s\n",
              full_identical ? "yes" : "NO");
  std::printf("  info_gain > uniform (mean DR over partial budgets)"
              "  %zu / %zu scenarios\n",
              wins, std::size(kScenarios));

  // Contract 2: the adaptive planner must beat uniform sampling at
  // equal budget on at least 3 scenarios — the headline claim of the
  // planning subsystem, held by the bench gate.
  run_result headline;
  headline.index = run_index++;
  headline.label = "plan";
  headline.seconds = total_seconds;
  headline.measurements = {
      {"headline", "wins", static_cast<double>(wins)},
      {"headline", "full_budget_identical", full_identical ? 1.0 : 0.0},
      {"headline", "pass_seconds", total_seconds},
  };
  report.total_seconds = total_seconds;
  report.add(std::move(headline));

  if (opts.has("csv")) {
    report.write_runs_csv(opts.get_string("csv", "plan_curves.csv"));
  }
  maybe_write_bench_json(report, opts, "micro_plan",
                         {{"intervals", std::to_string(intervals)},
                          {"chunk", std::to_string(chunk)}});

  if (!full_identical) return 1;
  if (wins < 3) {
    std::fprintf(stderr,
                 "micro_plan: info_gain beat uniform on only %zu scenarios "
                 "(need >= 3)\n",
                 wins);
    return 1;
  }
  return 0;
}
