// Microbenchmarks for Algorithm 1 (path-set selection), including the
// SortByHammingWeight ablation: the ordering is a search-speed
// optimization, so disabling it must not change the achieved rank —
// only the time to reach it.
#include <benchmark/benchmark.h>

#include "ntom/corr/correlation.hpp"
#include "ntom/sim/monitor.hpp"
#include "ntom/sim/packet_sim.hpp"
#include "ntom/sim/scenario.hpp"
#include "ntom/tomo/pathset_select.hpp"
#include "ntom/topogen/brite.hpp"
#include "ntom/topogen/sparse.hpp"

namespace {

struct fixture {
  ntom::topology topo;
  ntom::bitvec potcong;
  ntom::subset_catalog catalog;
};

fixture make_fixture(bool sparse) {
  fixture f;
  if (sparse) {
    ntom::topogen::sparse_params params;
    params.seed = 3;
    f.topo = ntom::topogen::generate_sparse(params);
  } else {
    ntom::topogen::brite_params params;
    params.seed = 3;
    f.topo = ntom::topogen::generate_brite(params);
  }
  ntom::scenario_params sp;
  sp.seed = 5;
  const auto model = ntom::make_scenario(
      f.topo, "no_independence", sp);
  ntom::sim_params sim;
  sim.intervals = 200;
  const auto data = ntom::run_experiment(f.topo, model, sim);
  f.potcong = ntom::potentially_congested_links(
      f.topo, ntom::path_observations(data).always_good_paths());
  f.catalog = ntom::subset_catalog::build(f.topo, f.potcong);
  return f;
}

void bm_select_sorted(benchmark::State& state) {
  const fixture f = make_fixture(state.range(0) == 1);
  ntom::pathset_selection_params params;
  params.sort_by_hamming_weight = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ntom::select_path_sets(f.topo, f.catalog, f.potcong, params));
  }
}
BENCHMARK(bm_select_sorted)->Arg(0)->Arg(1);  // 0 = Brite, 1 = Sparse.

void bm_select_unsorted(benchmark::State& state) {
  const fixture f = make_fixture(state.range(0) == 1);
  ntom::pathset_selection_params params;
  params.sort_by_hamming_weight = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ntom::select_path_sets(f.topo, f.catalog, f.potcong, params));
  }
}
BENCHMARK(bm_select_unsorted)->Arg(0)->Arg(1);

void bm_catalog_build(benchmark::State& state) {
  const fixture f = make_fixture(state.range(0) == 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ntom::subset_catalog::build(f.topo, f.potcong));
  }
}
BENCHMARK(bm_catalog_build)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
