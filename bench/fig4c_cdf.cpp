// Reproduces Fig. 4(c): CDF of the absolute per-link error for the
// "No Independence" scenario on Sparse topologies, for Independence,
// Correlation-heuristic, and Correlation-complete. The paper reads the
// CDFs at error 0.1: ~50% (Independence), ~65% (heuristic), ~80%
// (Correlation-complete).
#include <cstdio>
#include <iostream>
#include <optional>

#include "ntom/corr/correlation.hpp"
#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/tomo/correlation_complete.hpp"
#include "ntom/tomo/correlation_heuristic.hpp"
#include "ntom/tomo/independence.hpp"
#include "ntom/util/csv.hpp"
#include "ntom/util/flags.hpp"
#include "ntom/util/stats.hpp"

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const bool paper_scale = opts.get_string("scale", "small") == "paper";
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const auto intervals = static_cast<std::size_t>(
      opts.get_int("intervals", paper_scale ? 1000 : 300));

  run_config config;
  config.topo = paper_scale ? topology_spec("sparse,scale=paper")
                            : topology_spec("sparse");
  config.topo_seed = seed + 1;
  config.scenario = "no_independence,nonstationary";
  config.scenario_opts.seed = seed + 2;
  config.sim.intervals = intervals;
  config.sim.seed = seed + 3;

  std::cout << "Fig. 4(c) — CDF of absolute error, No Independence, Sparse "
            << "(scale=" << (paper_scale ? "paper" : "small")
            << ", T=" << intervals << ", seed=" << seed << ")\n\n";

  const run_artifacts run = prepare_run(config);
  const ground_truth truth = run.make_truth();
  const path_observations obs(run.data);
  const bitvec potcong =
      potentially_congested_links(run.topo(), obs.always_good_paths());
  std::fprintf(stderr, "[fig4c] %s, potcong=%zu\n",
               run.topo().describe().c_str(), potcong.count());

  const auto indep = compute_independence(run.topo(), run.data);
  const auto heur = compute_correlation_heuristic(run.topo(), run.data);
  const auto complete = compute_correlation_complete(run.topo(), run.data);

  const empirical_cdf cdf_indep(
      link_absolute_errors(run.topo(), truth, indep.links, potcong));
  const empirical_cdf cdf_heur(link_absolute_errors(
      run.topo(), truth, heur.estimates.to_link_estimates(), potcong));
  const empirical_cdf cdf_complete(link_absolute_errors(
      run.topo(), truth, complete.estimates.to_link_estimates(), potcong));

  table_printer table({"Abs error x", "Independence", "Corr-heuristic",
                       "Corr-complete"});
  std::optional<csv_writer> csv;
  if (opts.has("csv")) {
    csv.emplace(opts.get_string("csv", "fig4c.csv"));
    csv->write_header(
        {"x", "independence", "correlation_heuristic", "correlation_complete"});
  }
  for (const double x : {0.0, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2, 0.3, 0.4,
                         0.5, 0.75, 1.0}) {
    const std::vector<double> row{cdf_indep.at(x), cdf_heur.at(x),
                                  cdf_complete.at(x)};
    table.add_row(format_fixed(x, 3), row);
    if (csv) csv->write_row(format_fixed(x, 3), row);
  }
  table.print(std::cout);

  std::cout << "\nFraction of links with error < 0.1:"
            << "  Independence=" << format_fixed(cdf_indep.at(0.1), 3)
            << "  Corr-heuristic=" << format_fixed(cdf_heur.at(0.1), 3)
            << "  Corr-complete=" << format_fixed(cdf_complete.at(0.1), 3)
            << "\n";
  return 0;
}
