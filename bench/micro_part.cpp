// Partitioned-vs-monolithic inference bench (ISSUE 10: ntom/part).
//
// Phase 1 — equivalence (small Brite, the gated headline): fit the
// streaming Independence estimator monolithically and through the
// partitioned adapter (bicomp cells, agreement-weighted merge at the
// cut links) on the same interval stream, and through partition_cells
// on the work-stealing grid. Gated cells: the mean absolute
// partitioned-vs-monolithic estimate delta over commonly-determined
// links, the cell count, and the exact adapter-vs-grid bit identity.
//
// Phase 2 — scale (>100k links): a federation of independent Brite
// regions merged into one topology, partitioned by connected
// components (empty cut set). The partitioned streamed fit runs whole;
// the monolithic fit is *infeasible* — solve_least_squares stages the
// sparse system dense for the QR, equations x columns doubles — so its
// memory demand is reported analytically instead of executed. Gated
// cells: the link/cell structure and the dense-stage byte counts
// (exact: pure functions of the seeds), plus the chunk-size bit
// identity of the partitioned fit. Wall clock and VmHWM are recorded,
// never gated.
//
//   ./micro_part                      # defaults: gated-baseline shape
//   ./micro_part --regions=8          # smaller scale phase (ungated)
//   ./micro_part --json --threads=4
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ntom/api/estimator.hpp"
#include "ntom/exp/grid.hpp"
#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/part/hier_infer.hpp"
#include "ntom/part/partition.hpp"
#include "ntom/sim/packet_sim.hpp"
#include "ntom/sim/scenario.hpp"
#include "ntom/topogen/brite.hpp"
#include "ntom/util/flags.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// Peak resident set size from /proc/self/status (Linux); 0 elsewhere.
/// Observability only — never a gated cell.
double vm_hwm_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::stod(line.substr(6)) / 1024.0;
    }
  }
  return 0.0;
}

/// Dense-stage bytes of one Independence solve: solve_least_squares
/// stages the sparse system as an equations x columns double matrix
/// for the QR. Equations = one per path plus the capped pair
/// equations; columns = the potentially congested links the solver
/// keeps unknowns for.
double dense_stage_bytes(std::size_t paths, std::size_t columns,
                         std::size_t pair_cap) {
  return static_cast<double>(paths + pair_cap) * static_cast<double>(columns) *
         sizeof(double);
}

/// Concatenates independently generated topologies into one federated
/// topology: disjoint router substrates, AS ids offset per region, link
/// and path ids appended in region order. No path or router link spans
/// regions, so the components partition recovers the regions exactly
/// (empty cut set).
ntom::topology merge_regions(const std::vector<ntom::topology>& regions) {
  std::size_t router_links = 0;
  for (const ntom::topology& r : regions) {
    router_links += r.num_router_links();
  }
  ntom::topology merged(router_links);
  std::size_t router_base = 0;
  ntom::as_id as_base = 0;
  ntom::link_id link_base = 0;
  for (const ntom::topology& r : regions) {
    for (ntom::link_id e = 0; e < r.num_links(); ++e) {
      ntom::link_info info = r.link(e);
      info.as_number += as_base;
      for (ntom::router_link_id& rl : info.router_links) {
        rl += static_cast<ntom::router_link_id>(router_base);
      }
      merged.add_link(std::move(info));
    }
    for (ntom::path_id p = 0; p < r.num_paths(); ++p) {
      std::vector<ntom::link_id> links = r.get_path(p).links();
      for (ntom::link_id& e : links) e += link_base;
      merged.add_path(std::move(links));
    }
    router_base += r.num_router_links();
    as_base += static_cast<ntom::as_id>(r.num_ases());
    link_base += static_cast<ntom::link_id>(r.num_links());
  }
  merged.finalize();
  return merged;
}

bool estimates_identical(const ntom::link_estimates& a,
                         const ntom::link_estimates& b) {
  if (a.congestion.size() != b.congestion.size()) return false;
  for (std::size_t e = 0; e < a.congestion.size(); ++e) {
    if (a.congestion[e] != b.congestion[e] ||
        a.estimated.test(e) != b.estimated.test(e)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const auto intervals =
      static_cast<std::size_t>(opts.get_int("intervals", 240));
  const auto threads = static_cast<std::size_t>(opts.get_int("threads", 4));
  constexpr std::size_t kDefaultRegions = 1120;
  const auto regions =
      static_cast<std::size_t>(opts.get_int("regions", kDefaultRegions));
  const auto scale_intervals =
      static_cast<std::size_t>(opts.get_int("scale-intervals", 16));

  batch_report report;
  run_result row;
  row.index = 0;
  row.label = "part";
  const auto bench_t0 = clock_type::now();

  // ------------------------------------------------------------------
  // Phase 1: equivalence on a small Brite topology.
  // ------------------------------------------------------------------
  run_config config;
  config.topo = "brite,n=24,hosts=60,paths=240";
  config.topo_seed = 3;
  config.scenario = "random_congestion";
  config.scenario_opts.seed = 11;
  config.sim.seed = 19;
  config.sim.intervals = intervals;
  config.sim.packets_per_path = 40;
  config.stream.enabled = true;
  config.stream.chunk_intervals = 32;
  config.reconcile();
  const run_artifacts run = prepare_topology(config);

  // Monolithic streamed fit.
  const auto mono_t0 = clock_type::now();
  const std::unique_ptr<estimator> mono = make_estimator("independence");
  estimator_fit_sink mono_sink(*mono);
  stream_experiment(run, config, mono_sink);
  const link_estimates mono_est = mono->links();
  const double mono_seconds = seconds_since(mono_t0);

  // Partitioned adapter on bicomp cells (forced small so the plan is
  // non-trivial and the cut-link merge actually runs).
  partition_options equiv_options;
  equiv_options.mode = partition_mode::bicomp;
  equiv_options.max_cell_links = 24;
  const auto plan = std::make_shared<const partition_plan>(
      make_partition(run.topo(), equiv_options));
  std::printf("micro_part: equivalence topology %s\n",
              run.topo().describe().c_str());
  std::printf("micro_part: equivalence plan %s\n", plan->describe().c_str());

  const auto part_t0 = clock_type::now();
  const std::unique_ptr<estimator> part =
      make_partitioned_estimator("independence", plan);
  estimator_fit_sink part_sink(*part);
  stream_experiment(run, config, part_sink);
  const link_estimates part_est = part->links();
  const double part_seconds = seconds_since(part_t0);

  // Delta over links both fits determined; partitioning may sacrifice
  // determinability (straddling-path evidence is dropped, never
  // misattributed), so count the sacrificed links separately.
  double delta_sum = 0.0;
  double delta_max = 0.0;
  std::size_t common = 0;
  std::size_t sacrificed = 0;
  for (link_id e = 0; e < run.topo().num_links(); ++e) {
    const bool in_mono = mono_est.estimated.test(e);
    const bool in_part = part_est.estimated.test(e);
    if (in_mono && in_part) {
      const double d = std::fabs(mono_est.congestion[e] - part_est.congestion[e]);
      delta_sum += d;
      delta_max = std::max(delta_max, d);
      ++common;
    } else if (in_mono && !in_part) {
      ++sacrificed;
    }
  }
  const double mean_delta = common > 0 ? delta_sum / common : 0.0;

  // The same plan driven as grid cells: per-cell fits spread over the
  // work-stealing scheduler, merged() must equal the adapter exactly.
  partition_cells grid_eval(plan, "independence");
  run_spec grid_spec;
  grid_spec.label = "equivalence";
  grid_spec.config = config;
  batch_params grid_params;
  grid_params.threads = threads;
  grid_params.derive_seeds = false;
  grid_stats stats;
  const auto grid_t0 = clock_type::now();
  (void)run_grid({grid_spec}, grid_eval, grid_params, &stats);
  const double grid_seconds = seconds_since(grid_t0);
  const bool grid_identical = estimates_identical(grid_eval.merged(), part_est);

  table_printer equiv_table(
      {"Fit", "Seconds", "MeanDelta", "MaxDelta", "Determined"});
  equiv_table.add_row({"monolithic", format_fixed(mono_seconds), "-", "-",
                       std::to_string(mono_est.estimated.count())});
  equiv_table.add_row({"partitioned", format_fixed(part_seconds),
                       format_fixed(mean_delta, 6), format_fixed(delta_max, 6),
                       std::to_string(part_est.estimated.count())});
  equiv_table.add_row({"grid-cells", format_fixed(grid_seconds),
                       grid_identical ? "exact" : "DIVERGED", "-",
                       std::to_string(grid_eval.merged().estimated.count())});
  equiv_table.print(std::cout);
  std::printf("  straddling paths excluded      %zu\n",
              plan->straddling_paths);
  std::printf("  links sacrificed to the cut    %zu of %zu\n\n", sacrificed,
              run.topo().num_links());

  row.measurements.push_back(
      {"equivalence", "mean_abs_error", mean_delta});
  row.measurements.push_back({"equivalence", "max_abs_delta", delta_max});
  row.measurements.push_back(
      {"equivalence", "cells", static_cast<double>(plan->cells.size())});
  row.measurements.push_back(
      {"equivalence", "cut_link_count",
       static_cast<double>(plan->cut_links.size())});
  row.measurements.push_back(
      {"equivalence", "straddling_path_count",
       static_cast<double>(plan->straddling_paths)});
  row.measurements.push_back(
      {"equivalence", "grid_identical", grid_identical ? 1.0 : 0.0});
  row.measurements.push_back({"equivalence", "mono_seconds", mono_seconds});
  row.measurements.push_back({"equivalence", "part_seconds", part_seconds});
  row.measurements.push_back({"equivalence", "grid_seconds", grid_seconds});

  // ------------------------------------------------------------------
  // Phase 2: the >100k-link federation.
  // ------------------------------------------------------------------
  const auto gen_t0 = clock_type::now();
  std::vector<topology> region_topos;
  region_topos.reserve(regions);
  // Many small regions beat few big ones: AS-level links only
  // materialize along monitored paths, so link yield per path decays as
  // a region grows (dedup), while the per-cell QR cost grows
  // superlinearly. This shape yields ~2 links per path (~120 links per
  // region), so ~1100 regions cross the 10^5-link bar from only ~53k
  // paths — per-path link sets over the federated link universe are the
  // dominant memory term, so links per path is the figure of merit.
  topogen::brite_params region_params;
  region_params.num_ases = 64;
  region_params.routers_per_as = 4;
  region_params.num_vantage_hosts = 8;
  region_params.num_destination_hosts = 60;
  region_params.num_paths = 60;
  for (std::size_t r = 0; r < regions; ++r) {
    region_params.seed = 1000 + r;
    region_topos.push_back(topogen::generate_brite(region_params));
  }
  const topology federation = merge_regions(region_topos);
  region_topos.clear();
  const double generate_seconds = seconds_since(gen_t0);
  std::printf("micro_part: federation %s (%.2f s to generate)\n",
              federation.describe().c_str(), generate_seconds);

  const auto plan_t0 = clock_type::now();
  partition_options scale_options;
  scale_options.mode = partition_mode::components;
  scale_options.max_cell_links = 1u << 20;
  const auto scale_plan = std::make_shared<const partition_plan>(
      make_partition(federation, scale_options));
  const double partition_seconds = seconds_since(plan_t0);
  std::printf("micro_part: federation plan %s (%.2f s)\n",
              scale_plan->describe().c_str(), partition_seconds);

  scenario_params scale_scenario;
  scale_scenario.seed = 5;
  const congestion_model scale_model =
      make_scenario(federation, "random_congestion", scale_scenario);
  sim_params scale_sim;
  scale_sim.intervals = scale_intervals;
  scale_sim.packets_per_path = 10;
  scale_sim.seed = 7;

  // The partitioned streamed fit runs whole at this scale; repeat at a
  // different chunk size to hold the chunking bit-identity contract.
  // The default 6000-equation pair cap is a monolithic-fit budget —
  // paying it per cell would make the cap, not the cell, the cost
  // driver across ~900 cells. 1000 pairs per ~60-path cell is still a
  // far richer aggregate equation set than any monolithic fit stages.
  const char* const scale_spec = "independence,pairs=1000";
  const std::size_t scale_pair_cap = 1000;
  const auto scale_t0 = clock_type::now();
  const std::unique_ptr<estimator> scale_fit =
      make_partitioned_estimator(scale_spec, scale_plan);
  estimator_fit_sink scale_sink(*scale_fit);
  run_experiment_streaming(federation, scale_model, scale_sim, scale_sink, 4);
  const link_estimates scale_est = scale_fit->links();
  const double scale_fit_seconds = seconds_since(scale_t0);

  const std::unique_ptr<estimator> rechunk_fit =
      make_partitioned_estimator(scale_spec, scale_plan);
  estimator_fit_sink rechunk_sink(*rechunk_fit);
  run_experiment_streaming(federation, scale_model, scale_sim, rechunk_sink,
                           16);
  const bool chunk_identical =
      estimates_identical(rechunk_fit->links(), scale_est);

  // Memory story: the monolithic Independence solve would stage its
  // sparse system dense for the QR — equations x potentially-congested
  // columns of doubles — while the partitioned fit never stages more
  // than its largest cell. Both are pure functions of the seeds.
  const bitvec& congestable = scale_model.congestable_links;
  const double mono_stage = dense_stage_bytes(
      federation.num_paths(),
      congestable.and_count(federation.covered_links()),
      /*pair_cap=*/6000);  // the monolithic fit runs at the default cap.
  double peak_cell_stage = 0.0;
  for (const partition_cell& cell : scale_plan->cells) {
    const double cell_stage =
        dense_stage_bytes(cell.paths.size(),
                          congestable.and_count(cell.link_mask),
                          scale_pair_cap);
    peak_cell_stage = std::max(peak_cell_stage, cell_stage);
  }
  const double reduction =
      peak_cell_stage > 0.0 ? mono_stage / peak_cell_stage : 0.0;
  const double rss_mb = vm_hwm_mb();

  table_printer scale_table({"Quantity", "Value"});
  scale_table.add_row(
      {"links", std::to_string(federation.num_links())});
  scale_table.add_row({"paths", std::to_string(federation.num_paths())});
  scale_table.add_row(
      {"cells", std::to_string(scale_plan->cells.size())});
  scale_table.add_row(
      {"monolithic dense stage (MB)", format_fixed(mono_stage / 1048576.0, 1)});
  scale_table.add_row({"peak cell dense stage (MB)",
                       format_fixed(peak_cell_stage / 1048576.0, 1)});
  scale_table.add_row({"stage reduction (x)", format_fixed(reduction, 1)});
  scale_table.add_row(
      {"partitioned fit (s)", format_fixed(scale_fit_seconds)});
  scale_table.add_row(
      {"chunk-size bit identity", chunk_identical ? "yes" : "NO"});
  scale_table.add_row({"process VmHWM (MB)", format_fixed(rss_mb, 1)});
  scale_table.print(std::cout);
  std::printf("\n");

  row.measurements.push_back(
      {"scale", "links", static_cast<double>(federation.num_links())});
  row.measurements.push_back(
      {"scale", "paths", static_cast<double>(federation.num_paths())});
  row.measurements.push_back(
      {"scale", "cells", static_cast<double>(scale_plan->cells.size())});
  row.measurements.push_back(
      {"scale", "cut_link_count",
       static_cast<double>(scale_plan->cut_links.size())});
  row.measurements.push_back({"scale", "mono_stage_bytes", mono_stage});
  row.measurements.push_back(
      {"scale", "peak_cell_stage_bytes", peak_cell_stage});
  row.measurements.push_back({"scale", "stage_reduction_x", reduction});
  row.measurements.push_back(
      {"scale", "chunk_identical", chunk_identical ? 1.0 : 0.0});
  row.measurements.push_back({"scale", "generate_seconds", generate_seconds});
  row.measurements.push_back(
      {"scale", "partition_seconds", partition_seconds});
  row.measurements.push_back({"scale", "fit_seconds", scale_fit_seconds});
  row.measurements.push_back({"scale", "peak_rss_mb", rss_mb});

  const double total_seconds = seconds_since(bench_t0);
  row.seconds = total_seconds;
  report.total_seconds = total_seconds;
  report.add(std::move(row));
  maybe_write_bench_json(
      report, opts, "micro_part",
      {{"intervals", std::to_string(intervals)},
       {"regions", std::to_string(regions)},
       {"scale_intervals", std::to_string(scale_intervals)},
       {"threads", std::to_string(threads)}});

  // Self-checks: the bench is its own regression harness even without
  // the JSON gate.
  int rc = 0;
  if (!grid_identical) {
    std::fprintf(stderr,
                 "micro_part: grid-cell merge diverged from the adapter\n");
    rc = 1;
  }
  if (!chunk_identical) {
    std::fprintf(stderr,
                 "micro_part: partitioned fit changed with the chunk size\n");
    rc = 1;
  }
  if (mean_delta > 0.2) {
    std::fprintf(stderr,
                 "micro_part: partitioned-vs-monolithic mean delta %.4f "
                 "exceeds the sanity bound 0.2\n",
                 mean_delta);
    rc = 1;
  }
  if (regions >= kDefaultRegions && federation.num_links() <= 100000) {
    std::fprintf(stderr,
                 "micro_part: federation has only %zu links (need > 100k at "
                 "the default scale)\n",
                 federation.num_links());
    rc = 1;
  }
  std::printf("micro_part: done in %.2f s\n", total_seconds);
  return rc;
}
