// Reproduces Fig. 4(a) and 4(b): mean absolute error of the per-link
// congestion probability computed by Independence [11],
// Correlation-heuristic [9], and Correlation-complete (this paper),
// under Random / Concentrated / No-Independence congestion, on Brite
// (4a) and Sparse (4b) topologies. Per §5.4, the No-Stationarity
// behaviour is layered on top of every scenario (probabilities change
// every few intervals); pass --stationary to disable that layer.
//
// Runs on the batched experiment engine: the 2 topologies x 3 scenarios
// grid (x --replicas) fans out across --threads workers with per-run
// seeds derived from --seed and the run index.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ntom/corr/correlation.hpp"
#include "ntom/exp/batch.hpp"
#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/tomo/correlation_complete.hpp"
#include "ntom/tomo/correlation_heuristic.hpp"
#include "ntom/tomo/independence.hpp"
#include "ntom/util/flags.hpp"
#include "ntom/util/thread_pool.hpp"

namespace {

struct arm {
  std::string label;
  ntom::scenario_kind kind;
};

const std::vector<arm>& arms() {
  static const std::vector<arm> all = {
      {"Random Congestion", ntom::scenario_kind::random_congestion},
      {"Concentrated Congestion", ntom::scenario_kind::concentrated_congestion},
      {"No Independence", ntom::scenario_kind::no_independence},
  };
  return all;
}

std::vector<ntom::run_spec> make_specs(bool paper_scale, bool stationary,
                                       std::size_t intervals,
                                       std::size_t replicas) {
  using namespace ntom;
  std::vector<run_spec> specs;
  for (std::size_t r = 0; r < replicas; ++r) {
    for (const topology_kind topo :
         {topology_kind::brite, topology_kind::sparse}) {
      for (const auto& [label, kind] : arms()) {
        run_config config;
        config.topo = topo;
        config.brite = paper_scale ? topogen::brite_params::paper_scale()
                                   : topogen::brite_params{};
        config.sparse = paper_scale ? topogen::sparse_params::paper_scale()
                                    : topogen::sparse_params{};
        config.scenario = kind;
        config.scenario_opts.nonstationary = !stationary;
        config.sim.intervals = intervals;
        run_spec spec{std::string(topology_kind_name(topo)) + "/" + label,
                      config};
        spec.seed_group = r;  // same topology across arms of a replica.
        specs.push_back(std::move(spec));
      }
    }
  }
  return specs;
}

std::vector<ntom::measurement> evaluate(const ntom::run_config& config,
                                        const ntom::run_artifacts& run) {
  using namespace ntom;
  const ground_truth truth = run.make_truth();
  const path_observations obs(run.data);
  const bitvec potcong =
      potentially_congested_links(run.topo, obs.always_good_paths());
  std::fprintf(stderr, "[fig4ab] %s/%s: %s, potcong=%zu\n",
               topology_kind_name(config.topo), scenario_name(config.scenario),
               run.topo.describe().c_str(), potcong.count());

  const auto indep = compute_independence(run.topo, run.data);
  const auto heur = compute_correlation_heuristic(run.topo, run.data);
  const auto complete = compute_correlation_complete(run.topo, run.data);

  return {
      {"Independence", "mean_abs_error",
       mean_of(link_absolute_errors(run.topo, truth, indep.links, potcong))},
      {"Corr-heuristic", "mean_abs_error",
       mean_of(link_absolute_errors(
           run.topo, truth, heur.estimates.to_link_estimates(), potcong))},
      {"Corr-complete", "mean_abs_error",
       mean_of(link_absolute_errors(
           run.topo, truth, complete.estimates.to_link_estimates(), potcong))},
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const bool paper_scale = opts.get_string("scale", "small") == "paper";
  const bool stationary = opts.get_bool("stationary", false);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const auto intervals = static_cast<std::size_t>(
      opts.get_int("intervals", paper_scale ? 1000 : 300));
  const auto replicas =
      static_cast<std::size_t>(opts.get_int("replicas", 1));
  const auto threads = static_cast<std::size_t>(opts.get_int("threads", 0));

  std::cout << "Fig. 4(a)/(b) — Probability Computation error "
            << "(scale=" << (paper_scale ? "paper" : "small")
            << ", T=" << intervals << ", seed=" << seed
            << (stationary ? ", stationary" : ", non-stationary")
            << ", replicas=" << replicas
            << ", threads=" << thread_pool::resolve_threads(threads) << ")\n\n";

  batch_params params;
  params.threads = threads;
  params.base_seed = seed;
  const batch_report report =
      run_batch(make_specs(paper_scale, stationary, intervals, replicas),
                evaluate, params);

  const std::vector<std::string> estimators = {"Independence", "Corr-heuristic",
                                               "Corr-complete"};
  for (const topology_kind topo :
       {topology_kind::brite, topology_kind::sparse}) {
    table_printer table(
        {"Scenario", "Independence", "Corr-heuristic", "Corr-complete"});
    for (const auto& [label, kind] : arms()) {
      const std::string full =
          std::string(topology_kind_name(topo)) + "/" + label;
      std::vector<double> row;
      for (const std::string& est : estimators) {
        row.push_back(report.mean_of(full, est, "mean_abs_error"));
      }
      table.add_row(label, row);
    }
    std::cout << (topo == topology_kind::brite
                      ? "(a) Mean absolute error — Brite topologies\n"
                      : "\n(b) Mean absolute error — Sparse topologies\n");
    table.print(std::cout);
  }
  std::printf("\n%zu runs in %.2fs wall clock\n", report.runs().size(),
              report.total_seconds);

  if (opts.has("csv")) {
    report.write_runs_csv(opts.get_string("csv", "fig4ab.csv"));
  }
  if (opts.has("summary-csv")) {
    report.write_summary_csv(
        opts.get_string("summary-csv", "fig4ab_summary.csv"));
  }
  return 0;
}
