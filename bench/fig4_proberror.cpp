// Reproduces Fig. 4(a) and 4(b): mean absolute error of the per-link
// congestion probability computed by Independence [11],
// Correlation-heuristic [9], and Correlation-complete (this paper),
// under Random / Concentrated / No-Independence congestion, on Brite
// (4a) and Sparse (4b) topologies. Per §5.4, the No-Stationarity
// behaviour is layered on top of every scenario (probabilities change
// every few intervals); pass --stationary to disable that layer.
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/tomo/correlation_complete.hpp"
#include "ntom/tomo/correlation_heuristic.hpp"
#include "ntom/tomo/independence.hpp"
#include "ntom/corr/correlation.hpp"
#include "ntom/util/csv.hpp"
#include "ntom/util/flags.hpp"

namespace {

struct arm {
  std::string label;
  ntom::scenario_kind kind;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const bool paper_scale = opts.get_string("scale", "small") == "paper";
  const bool stationary = opts.get_bool("stationary", false);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const auto intervals = static_cast<std::size_t>(
      opts.get_int("intervals", paper_scale ? 1000 : 300));

  std::cout << "Fig. 4(a)/(b) — Probability Computation error "
            << "(scale=" << (paper_scale ? "paper" : "small")
            << ", T=" << intervals << ", seed=" << seed
            << (stationary ? ", stationary" : ", non-stationary") << ")\n\n";

  const std::vector<arm> arms = {
      {"Random Congestion", scenario_kind::random_congestion},
      {"Concentrated Congestion", scenario_kind::concentrated_congestion},
      {"No Independence", scenario_kind::no_independence},
  };

  std::optional<csv_writer> csv;
  if (opts.has("csv")) {
    csv.emplace(opts.get_string("csv", "fig4ab.csv"));
    csv->write_header({"topology/scenario", "independence",
                       "correlation_heuristic", "correlation_complete"});
  }

  for (const topology_kind topo : {topology_kind::brite, topology_kind::sparse}) {
    table_printer table({"Scenario", "Independence", "Corr-heuristic",
                         "Corr-complete"});
    for (const auto& [label, kind] : arms) {
      run_config config;
      config.topo = topo;
      config.brite = paper_scale ? topogen::brite_params::paper_scale()
                                 : topogen::brite_params{};
      config.sparse = paper_scale ? topogen::sparse_params::paper_scale()
                                  : topogen::sparse_params{};
      config.brite.seed = seed;
      config.sparse.seed = seed + 1;
      config.scenario = kind;
      config.scenario_opts.seed = seed + 2;
      config.scenario_opts.nonstationary = !stationary;
      config.sim.intervals = intervals;
      config.sim.seed = seed + 3;

      const run_artifacts run = prepare_run(config);
      const ground_truth truth = run.make_truth();
      const path_observations obs(run.data);
      const bitvec potcong =
          potentially_congested_links(run.topo, obs.always_good_paths());
      std::fprintf(stderr, "[fig4ab] %s/%s: %s, potcong=%zu\n",
                   topology_kind_name(topo), label.c_str(),
                   run.topo.describe().c_str(), potcong.count());

      const auto indep = compute_independence(run.topo, run.data);
      const auto heur = compute_correlation_heuristic(run.topo, run.data);
      const auto complete = compute_correlation_complete(run.topo, run.data);

      const double err_indep = mean_of(
          link_absolute_errors(run.topo, truth, indep.links, potcong));
      const double err_heur = mean_of(link_absolute_errors(
          run.topo, truth, heur.estimates.to_link_estimates(), potcong));
      const double err_complete = mean_of(link_absolute_errors(
          run.topo, truth, complete.estimates.to_link_estimates(), potcong));

      table.add_row(label, {err_indep, err_heur, err_complete});
      if (csv) {
        csv->write_row(std::string(topology_kind_name(topo)) + "/" + label,
                       {err_indep, err_heur, err_complete});
      }
    }
    std::cout << (topo == topology_kind::brite
                      ? "(a) Mean absolute error — Brite topologies\n"
                      : "\n(b) Mean absolute error — Sparse topologies\n");
    table.print(std::cout);
  }
  return 0;
}
