// Reproduces Fig. 4(a) and 4(b): mean absolute error of the per-link
// congestion probability computed by Independence [11],
// Correlation-heuristic [9], and Correlation-complete (this paper),
// under Random / Concentrated / No-Independence congestion, on Brite
// (4a) and Sparse (4b) topologies. Per §5.4, the No-Stationarity
// behaviour is layered on top of every scenario (probabilities change
// every few intervals); pass --stationary to disable that layer.
//
// The grid is pure specs: 2 topology specs x 3 scenario specs, the
// estimators resolved by name through the estimator registry. Runs on
// the batched experiment engine: the grid (x --replicas) fans out
// across --threads workers with per-run seeds derived from --seed and
// the run index. --json[=<path>] writes a BENCH_*.json summary.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ntom/exp/batch.hpp"
#include "ntom/exp/evals.hpp"
#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/util/flags.hpp"
#include "ntom/util/thread_pool.hpp"

namespace {

const std::vector<ntom::scenario_spec>& scenario_arms() {
  static const std::vector<ntom::scenario_spec> arms = {
      "random_congestion", "concentrated_congestion", "no_independence"};
  return arms;
}

const std::vector<ntom::estimator_spec>& estimator_arms() {
  static const std::vector<ntom::estimator_spec> arms = {
      "independence", "corr-heuristic", "corr-complete"};
  return arms;
}

std::vector<ntom::run_spec> make_specs(bool paper_scale, bool stationary,
                                       std::size_t intervals,
                                       std::size_t replicas) {
  using namespace ntom;
  std::vector<run_spec> specs;
  for (std::size_t r = 0; r < replicas; ++r) {
    for (const char* topo_name : {"brite", "sparse"}) {
      topology_spec topo(topo_name);
      if (paper_scale) topo = topo.with_option("scale", "paper");
      for (scenario_spec scenario : scenario_arms()) {
        if (!stationary) scenario = scenario.with_option("nonstationary", "true");
        run_config config;
        config.topo = topo;
        config.scenario = scenario;
        config.sim.intervals = intervals;
        run_spec spec{topology_label(topo) + "/" + scenario_label(scenario),
                      std::move(config)};
        spec.seed_group = r;  // same topology across arms of a replica.
        specs.push_back(std::move(spec));
      }
    }
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const bool paper_scale = opts.get_string("scale", "small") == "paper";
  const bool stationary = opts.get_bool("stationary", false);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const auto intervals = static_cast<std::size_t>(
      opts.get_int("intervals", paper_scale ? 1000 : 300));
  const auto replicas =
      static_cast<std::size_t>(opts.get_int("replicas", 1));
  const auto threads = static_cast<std::size_t>(opts.get_int("threads", 0));

  std::cout << "Fig. 4(a)/(b) — Probability Computation error "
            << "(scale=" << (paper_scale ? "paper" : "small")
            << ", T=" << intervals << ", seed=" << seed
            << (stationary ? ", stationary" : ", non-stationary")
            << ", replicas=" << replicas
            << ", threads=" << thread_pool::resolve_threads(threads) << ")\n\n";

  const batch_eval_fn eval = estimator_eval(
      estimator_arms(), {.boolean_metrics = false, .link_error_metrics = true});
  const batch_eval_fn logged_eval = [&eval](const run_config& config,
                                            const run_artifacts& run) {
    std::fprintf(stderr, "[fig4ab] %s/%s: %s\n",
                 topology_label(config.topo).c_str(),
                 scenario_label(config.scenario).c_str(),
                 run.topo().describe().c_str());
    return eval(config, run);
  };

  batch_params params;
  params.threads = threads;
  params.base_seed = seed;
  const batch_report report =
      run_batch(make_specs(paper_scale, stationary, intervals, replicas),
                logged_eval, params);

  std::vector<std::string> estimators;
  for (const estimator_spec& s : estimator_arms()) {
    estimators.push_back(estimator_label(s));
  }
  for (const char* topo_name : {"brite", "sparse"}) {
    const std::string topo = topology_label(topology_spec(topo_name));
    table_printer table(
        {"Scenario", "Independence", "Corr-heuristic", "Corr-complete"});
    for (const scenario_spec& scenario : scenario_arms()) {
      const std::string label = scenario_label(scenario);
      const std::string full = topo + "/" + label;
      std::vector<double> row;
      for (const std::string& est : estimators) {
        row.push_back(report.mean_of(full, est, "mean_abs_error"));
      }
      table.add_row(label, row);
    }
    std::cout << (topo == "Brite"
                      ? "(a) Mean absolute error — Brite topologies\n"
                      : "\n(b) Mean absolute error — Sparse topologies\n");
    table.print(std::cout);
  }
  std::printf("\n%zu runs in %.2fs wall clock\n", report.runs().size(),
              report.total_seconds);

  if (opts.has("csv")) {
    report.write_runs_csv(opts.get_string("csv", "fig4ab.csv"));
  }
  if (opts.has("summary-csv")) {
    report.write_summary_csv(
        opts.get_string("summary-csv", "fig4ab_summary.csv"));
  }
  maybe_write_bench_json(
      report, opts, "fig4_proberror",
      {{"scale", paper_scale ? "paper" : "small"},
       {"intervals", std::to_string(intervals)},
       {"seed", std::to_string(seed)},
       {"stationary", stationary ? "true" : "false"},
       {"replicas", std::to_string(replicas)},
       {"threads", std::to_string(thread_pool::resolve_threads(threads))}});
  return 0;
}
