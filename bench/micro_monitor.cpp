// Microbenchmark for the columnar observation store (ISSUE 3): fused
// bit_matrix count_all_good kernels vs the legacy per-bitvec loop, and
// the measurement-memory footprint of the three execution layouts
// (legacy three-view, packed columnar store, streamed counters).
//
//   ./micro_monitor                      # defaults: T = 100000
//   ./micro_monitor --intervals=200000 --queries=6000 --json
//
// --json[=<path>] writes BENCH_micro_monitor.json in the same summary
// shape as the figure benches. The headline cells are
// fused/speedup_vs_legacy (>= 2x expected) and
// memory/reduction_packed_x / reduction_streaming_x (>= 2x expected at
// T = 10^5).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ntom/exp/batch.hpp"
#include "ntom/exp/report.hpp"
#include "ntom/exp/runner.hpp"
#include "ntom/sim/monitor.hpp"
#include "ntom/util/flags.hpp"
#include "ntom/util/rng.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// The pre-columnar count_all_good: copy the first member's interval
/// set, AND the rest in, popcount — one heap allocation per query plus
/// one extra pass over the words.
std::size_t legacy_count_all_good(const std::vector<ntom::bitvec>& good,
                                  std::size_t intervals,
                                  const ntom::bitvec& path_set) {
  bool first = true;
  ntom::bitvec acc;
  path_set.for_each([&](std::size_t p) {
    if (first) {
      acc = good[p];
      first = false;
    } else {
      acc &= good[p];
    }
  });
  if (first) return intervals;
  return acc.count();
}

std::size_t bitvec_heap_bytes(const ntom::bitvec& b) {
  return b.num_words() * sizeof(std::uint64_t) + sizeof(ntom::bitvec);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ntom;
  const flags opts(argc, argv);
  const auto intervals =
      static_cast<std::size_t>(opts.get_int("intervals", 100000));
  const auto num_queries =
      static_cast<std::size_t>(opts.get_int("queries", 4000));
  const auto reps = static_cast<std::size_t>(opts.get_int("reps", 3));

  // One realistic monitored deployment; oracle monitoring keeps the
  // simulation itself off the clock at T = 10^5.
  run_config config;
  config.topo = "brite,n=10,hosts=30,paths=60";
  config.topo_seed = 5;
  config.scenario = "random_congestion";
  config.scenario_opts.seed = 7;
  config.sim.intervals = intervals;
  config.sim.oracle_monitor = true;
  config.sim.seed = 9;
  const run_artifacts run = prepare_run(config);
  const std::size_t paths = run.topo().num_paths();

  // Legacy three-view layout, reconstructed exactly as the pre-columnar
  // experiment_data stored it (per-bitvec heap allocations included).
  std::vector<bitvec> legacy_path_good;
  legacy_path_good.reserve(paths);
  for (std::size_t p = 0; p < paths; ++p) {
    legacy_path_good.push_back(run.data.path_good.row_copy(p));
  }
  std::vector<bitvec> legacy_congested;
  std::vector<bitvec> legacy_true_links;
  legacy_congested.reserve(intervals);
  legacy_true_links.reserve(intervals);
  for (std::size_t t = 0; t < intervals; ++t) {
    legacy_congested.push_back(run.data.congested_paths_at(t));
    legacy_true_links.push_back(run.data.true_links_at(t));
  }

  // Deterministic query workload: singles, pairs, and triples over the
  // monitored paths (the shapes Probability Computation floods).
  std::vector<bitvec> queries;
  queries.reserve(num_queries);
  rng rand(17);
  for (std::size_t i = 0; i < num_queries; ++i) {
    bitvec q(paths);
    const std::size_t members = 1 + i % 3;
    for (std::size_t m = 0; m < members; ++m) {
      q.set(rand.next_u64() % paths);
    }
    queries.push_back(std::move(q));
  }

  const path_observations obs(run.data);

  // Correctness guard before timing anything.
  std::size_t checksum = 0;
  for (const bitvec& q : queries) {
    const std::size_t fused = obs.count_all_good(q);
    const std::size_t legacy = legacy_count_all_good(legacy_path_good,
                                                     intervals, q);
    if (fused != legacy) {
      std::fprintf(stderr, "kernel mismatch: fused %zu legacy %zu on %s\n",
                   fused, legacy, q.to_string().c_str());
      return 1;
    }
    checksum += fused;
  }

  double legacy_seconds = 0.0;
  double fused_seconds = 0.0;
  std::size_t sink = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = clock_type::now();
    for (const bitvec& q : queries) {
      sink += legacy_count_all_good(legacy_path_good, intervals, q);
    }
    legacy_seconds += seconds_since(t0);
    const auto t1 = clock_type::now();
    for (const bitvec& q : queries) sink += obs.count_all_good(q);
    fused_seconds += seconds_since(t1);
  }
  const double total_queries = static_cast<double>(num_queries * reps);
  const double legacy_mqps = total_queries / legacy_seconds / 1e6;
  const double fused_mqps = total_queries / fused_seconds / 1e6;
  const double speedup = legacy_seconds / fused_seconds;

  // Measurement-memory accounting, measured from the live structures.
  std::size_t legacy_bytes = 0;
  for (const bitvec& b : legacy_path_good) legacy_bytes += bitvec_heap_bytes(b);
  for (const bitvec& b : legacy_congested) legacy_bytes += bitvec_heap_bytes(b);
  for (const bitvec& b : legacy_true_links) {
    legacy_bytes += bitvec_heap_bytes(b);
  }
  const std::size_t packed_bytes = run.data.path_good.memory_bytes() +
                                   run.data.true_links.memory_bytes();

  // Streamed peak: the in-flight chunk pair plus the online counters of
  // the full query family (what a streaming fit retains instead of any
  // full view).
  run_config streamed_config = config;
  streamed_config.stream.enabled = true;
  pathset_counter counter(queries);
  const auto t2 = clock_type::now();
  stream_experiment(run, streamed_config, counter);
  const double streaming_pass_seconds = seconds_since(t2);
  std::size_t streaming_bytes = 0;
  {
    const bit_matrix chunk_paths(streamed_config.stream.chunk_intervals, paths);
    const bit_matrix chunk_links(streamed_config.stream.chunk_intervals,
                                 run.topo().num_links());
    streaming_bytes = 2 * (chunk_paths.memory_bytes() +
                           chunk_links.memory_bytes());  // chunk + transpose.
    for (const bitvec& q : counter.sets()) {
      streaming_bytes += bitvec_heap_bytes(q);
    }
    streaming_bytes += counter.counts().capacity() * sizeof(std::size_t);
  }
  const double reduction_packed = static_cast<double>(legacy_bytes) /
                                  static_cast<double>(packed_bytes);
  const double reduction_streaming = static_cast<double>(legacy_bytes) /
                                     static_cast<double>(streaming_bytes);

  std::printf("micro_monitor: %zu paths x %zu intervals, %zu queries x %zu "
              "reps (checksum %zu, sink %zu)\n\n",
              paths, intervals, num_queries, reps, checksum, sink);
  std::printf("  count_all_good  legacy per-bitvec loop  %8.2f Mq/s\n",
              legacy_mqps);
  std::printf("  count_all_good  fused bit_matrix kernel %8.2f Mq/s\n",
              fused_mqps);
  std::printf("  speedup fused vs legacy                 %8.2fx\n\n", speedup);
  std::printf("  measurement memory  legacy three views  %10zu bytes\n",
              legacy_bytes);
  std::printf("  measurement memory  packed store        %10zu bytes (%.2fx "
              "smaller)\n",
              packed_bytes, reduction_packed);
  std::printf("  measurement memory  streamed counters   %10zu bytes (%.2fx "
              "smaller)\n",
              streaming_bytes, reduction_streaming);
  std::printf("  streaming pass over T=%zu: %.3f s\n", intervals,
              streaming_pass_seconds);

  batch_report report;
  run_result result;
  result.index = 0;
  result.label = "micro_monitor";
  result.seconds = legacy_seconds + fused_seconds + streaming_pass_seconds;
  result.measurements = {
      {"legacy", "count_all_good_mqps", legacy_mqps},
      {"fused", "count_all_good_mqps", fused_mqps},
      {"fused", "speedup_vs_legacy", speedup},
      {"memory", "legacy_three_view_bytes", static_cast<double>(legacy_bytes)},
      {"memory", "packed_store_bytes", static_cast<double>(packed_bytes)},
      {"memory", "streaming_peak_bytes", static_cast<double>(streaming_bytes)},
      {"memory", "reduction_packed_x", reduction_packed},
      {"memory", "reduction_streaming_x", reduction_streaming},
      {"streaming", "pass_seconds", streaming_pass_seconds},
  };
  report.total_seconds = result.seconds;
  report.add(std::move(result));
  maybe_write_bench_json(report, opts, "micro_monitor",
                         {{"paths", std::to_string(paths)},
                          {"intervals", std::to_string(intervals)},
                          {"queries", std::to_string(num_queries)},
                          {"reps", std::to_string(reps)}});
  return 0;
}
